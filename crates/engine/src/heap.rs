//! Heap tables: a sequence of slotted pages behind a buffer-pool style
//! indirection.
//!
//! The page table (PageId → frame) is itself a traced structure: looking
//! up a page costs a buffer-pool probe (hash + pin), exactly the code
//! path a disk-resident engine pays even when everything is
//! memory-resident — part of the paper-era instruction footprint.

use dbcmp_trace::AddressSpace;

use crate::costs::instr;
use crate::error::{EngineError, Result};
use crate::page::{SlotId, SlottedPage, PAGE_SIZE};
use crate::schema::Schema;
use crate::tctx::TraceCtx;
use crate::types::{decode_row, encode_row, Row, Value};

/// Row identifier: (page, slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the heap.
    pub page: u32,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Rid {
    /// Pack into a u64 (B+Tree value payload).
    pub fn pack(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpack from the B+Tree value payload.
    pub fn unpack(v: u64) -> Self {
        Rid {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// One heap table.
#[derive(Debug)]
pub struct HeapTable {
    /// Row layout of the table.
    pub schema: Schema,
    pages: Vec<SlottedPage>,
    /// Simulated address of the buffer-pool page table for this heap.
    bp_addr: u64,
    /// Page currently targeted by inserts.
    insert_page: u32,
    live_rows: usize,
}

impl HeapTable {
    /// An empty heap with a simulated buffer-pool allocation.
    pub fn new(schema: Schema, space: &AddressSpace, name: &'static str) -> Self {
        HeapTable {
            schema,
            pages: Vec::new(),
            bp_addr: space.alloc(name, 16 * 1024),
            insert_page: 0,
            live_rows: 0,
        }
    }

    fn new_page(&mut self, space: &AddressSpace) -> u32 {
        let addr = space.alloc_anon(PAGE_SIZE as u64);
        self.pages.push(SlottedPage::new(addr));
        (self.pages.len() - 1) as u32
    }

    /// Buffer-pool probe for a page: charged instructions + a dependent
    /// load of the page-table bucket.
    fn bp_probe(&self, page: u32, tc: &mut TraceCtx) {
        tc.charge(tc.r.buffer_pool, instr::BP_LOOKUP);
        tc.load_dep(self.bp_addr + (page as u64 % 2048) * 8, 8);
        tc.charge(tc.r.buffer_pool, instr::PAGE_LATCH);
    }

    /// Insert a row; returns its RID.
    pub fn insert(
        &mut self,
        row: &[Value],
        space: &AddressSpace,
        tc: &mut TraceCtx,
    ) -> Result<Rid> {
        tc.charge(
            tc.r.tuple,
            instr::TUPLE_ENCODE + (self.schema.row_width() / 16) as u32,
        );
        let bytes = encode_row(&self.schema, row)?;
        if self.pages.is_empty() {
            self.new_page(space);
        }
        let mut page = self.insert_page;
        if !self.pages[page as usize].fits(bytes.len()) {
            page = self.new_page(space);
            self.insert_page = page;
        }
        self.bp_probe(page, tc);
        let slot = self.pages[page as usize].insert(&bytes, tc)?;
        self.live_rows += 1;
        Ok(Rid { page, slot })
    }

    /// Fetch and decode a row.
    pub fn get(&self, rid: Rid, tc: &mut TraceCtx) -> Result<Row> {
        self.bp_probe(rid.page, tc);
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or_else(|| EngineError::NotFound(format!("page {}", rid.page)))?;
        let bytes = page
            .get(rid.slot, tc)
            .ok_or_else(|| EngineError::NotFound(format!("rid {rid:?}")))?;
        tc.charge(tc.r.tuple, instr::TUPLE_DECODE + (bytes.len() / 16) as u32);
        Ok(decode_row(&self.schema, bytes))
    }

    /// Fetch the raw image (undo logging).
    pub fn get_bytes(&self, rid: Rid, tc: &mut TraceCtx) -> Result<Vec<u8>> {
        self.bp_probe(rid.page, tc);
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or_else(|| EngineError::NotFound(format!("page {}", rid.page)))?;
        page.get(rid.slot, tc)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| EngineError::NotFound(format!("rid {rid:?}")))
    }

    /// Update a row in place.
    pub fn update(&mut self, rid: Rid, row: &[Value], tc: &mut TraceCtx) -> Result<()> {
        tc.charge(
            tc.r.tuple,
            instr::TUPLE_ENCODE + (self.schema.row_width() / 16) as u32,
        );
        let bytes = encode_row(&self.schema, row)?;
        self.update_bytes(rid, &bytes, tc)
    }

    /// Update from a raw image (undo).
    pub fn update_bytes(&mut self, rid: Rid, bytes: &[u8], tc: &mut TraceCtx) -> Result<()> {
        self.bp_probe(rid.page, tc);
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| EngineError::NotFound(format!("page {}", rid.page)))?;
        page.update(rid.slot, bytes, tc)
    }

    /// Delete a row.
    pub fn delete(&mut self, rid: Rid, tc: &mut TraceCtx) -> Result<()> {
        self.bp_probe(rid.page, tc);
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| EngineError::NotFound(format!("page {}", rid.page)))?;
        page.delete(rid.slot, tc)?;
        self.live_rows -= 1;
        Ok(())
    }

    /// Restore a deleted row image at its original RID (abort of a
    /// delete; the slot's bytes are still reserved).
    pub fn restore_bytes(&mut self, rid: Rid, bytes: &[u8], tc: &mut TraceCtx) -> Result<()> {
        self.bp_probe(rid.page, tc);
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| EngineError::NotFound(format!("page {}", rid.page)))?;
        page.restore(rid.slot, bytes, tc)?;
        self.live_rows += 1;
        Ok(())
    }

    /// Re-insert a deleted row image at a fresh RID (abort of a delete).
    pub fn reinsert_bytes(
        &mut self,
        bytes: &[u8],
        space: &AddressSpace,
        tc: &mut TraceCtx,
    ) -> Result<Rid> {
        if self.pages.is_empty() {
            self.new_page(space);
        }
        let mut page = self.insert_page;
        if !self.pages[page as usize].fits(bytes.len()) {
            page = self.new_page(space);
            self.insert_page = page;
        }
        self.bp_probe(page, tc);
        let slot = self.pages[page as usize].insert(bytes, tc)?;
        self.live_rows += 1;
        Ok(Rid { page, slot })
    }

    /// Number of allocated pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Slot count (including tombstones) of one page; 0 for out-of-range.
    pub fn page_nslots(&self, page: u32) -> u16 {
        self.pages.get(page as usize).map_or(0, SlottedPage::nslots)
    }

    /// Number of live rows (tombstones excluded).
    pub fn n_rows(&self) -> usize {
        self.live_rows
    }

    /// Iterate all live RIDs in physical order (the scan operator drives
    /// this; per-tuple charges happen there).
    pub fn rids(&self) -> impl Iterator<Item = Rid> + '_ {
        self.pages.iter().enumerate().flat_map(|(p, page)| {
            (0..page.nslots()).map(move |s| Rid {
                page: p as u32,
                slot: s,
            })
        })
    }

    /// Raw access for the scan path: page + slot to decoded row, without
    /// buffer-pool charge (the scan pins a page once, not per tuple).
    pub fn read_at(&self, rid: Rid, tc: &mut TraceCtx) -> Option<Row> {
        let page = self.pages.get(rid.page as usize)?;
        let bytes = page.get(rid.slot, tc)?;
        tc.charge(tc.r.tuple, instr::TUPLE_DECODE + (bytes.len() / 16) as u32);
        Some(decode_row(&self.schema, bytes))
    }

    /// Per-page pin for scans.
    pub fn pin_page(&self, page: u32, tc: &mut TraceCtx) {
        self.bp_probe(page, tc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use crate::types::ColType;
    use dbcmp_trace::CodeRegions;

    fn setup() -> (HeapTable, AddressSpace, TraceCtx) {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        let space = AddressSpace::new();
        let schema = Schema::new(vec![("id", ColType::Int), ("name", ColType::Str(12))]);
        let heap = HeapTable::new(schema, &space, "t");
        (heap, space, TraceCtx::null(er))
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Str(name.into())]
    }

    #[test]
    fn insert_get_update_delete() {
        let (mut h, space, mut tc) = setup();
        let rid = h.insert(&row(1, "alice"), &space, &mut tc).unwrap();
        assert_eq!(h.get(rid, &mut tc).unwrap(), row(1, "alice"));
        h.update(rid, &row(1, "bob"), &mut tc).unwrap();
        assert_eq!(h.get(rid, &mut tc).unwrap(), row(1, "bob"));
        h.delete(rid, &mut tc).unwrap();
        assert!(h.get(rid, &mut tc).is_err());
        assert_eq!(h.n_rows(), 0);
    }

    #[test]
    fn spills_to_new_pages() {
        let (mut h, space, mut tc) = setup();
        for i in 0..2000 {
            h.insert(&row(i, "xxxxxxxxxxxx"), &space, &mut tc).unwrap();
        }
        assert!(h.n_pages() > 1, "2000 rows x 30B must span pages");
        assert_eq!(h.n_rows(), 2000);
        // All rows readable through the scan path.
        let mut seen = 0;
        for rid in h.rids().collect::<Vec<_>>() {
            if h.read_at(rid, &mut tc).is_some() {
                seen += 1;
            }
        }
        assert_eq!(seen, 2000);
    }

    #[test]
    fn rid_pack_roundtrip() {
        let rid = Rid {
            page: 123_456,
            slot: 789,
        };
        assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    #[test]
    fn reinsert_restores_image() {
        let (mut h, space, mut tc) = setup();
        let rid = h.insert(&row(9, "gone"), &space, &mut tc).unwrap();
        let img = h.get_bytes(rid, &mut tc).unwrap();
        h.delete(rid, &mut tc).unwrap();
        let rid2 = h.reinsert_bytes(&img, &space, &mut tc).unwrap();
        assert_eq!(h.get(rid2, &mut tc).unwrap(), row(9, "gone"));
    }
}
