//! Row-level two-phase-locking lock manager with wait queues.
//!
//! A hash table of lock buckets; each bucket occupies exactly one cache
//! line in the simulated address space. Lock words are *the* shared-write
//! hot spots of an OLTP engine: every transaction from every client writes
//! them, which is what turns into coherence traffic on an SMP and into
//! shared-L2/L1-to-L1 transfers on a CMP (paper §5.2, Fig. 7).
//!
//! Two disciplines coexist:
//!
//! * **No-wait** ([`LockMgr::acquire`]): conflicts surface immediately as
//!   [`EngineError::LockConflict`] — the seed's behaviour, still used by
//!   sequential capture and by inserts (fresh-RID locks cannot meaningfully
//!   wait).
//! * **Queued** ([`LockMgr::acquire_wait`]): conflicting requests park on a
//!   FIFO wait queue per lock. Releases grant from the front (shared
//!   requests join in batches; upgrades jump the queue when the upgrader is
//!   the sole holder). Each enqueue updates a waits-for graph and runs
//!   cycle detection; on a cycle the *youngest* transaction (largest id) is
//!   the victim — either the requester itself (it gets
//!   [`EngineError::Deadlock`] straight back) or a parked waiter (it is
//!   dequeued, marked, and receives the error when its scheduler slot
//!   retries the acquire).
//!
//! Grant decisions made while the winner is parked are recorded so the
//! winner's retry returns the right bookkeeping result (`WaitGranted` /
//! `WaitUpgraded`), and [`LockMgr::drain_woken`] hands the scheduler the
//! transactions it must resume, in grant order (determinism).

// Hash collections here are audited per-site with lint:allow(hash-order)
// annotations (rule D1); the file-level clippy opt-out avoids repeating
// an attribute at every justified site.
#![allow(clippy::disallowed_types)]

// lint:allow(hash-order): every map below is keyed lookup only; wake order comes from the `woken` Vec and wait_graph sorts before iterating
use std::collections::{HashMap, VecDeque};

use crate::costs::instr;
use crate::error::{EngineError, Result};
use crate::tctx::TraceCtx;
use crate::txn::TxnId;
use dbcmp_trace::AddressSpace;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Read lock: compatible with other shared holders.
    Shared,
    /// Write lock: exclusive against every other holder.
    Exclusive,
}

/// Outcome of a queued acquire ([`LockMgr::acquire_wait`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Newly granted now — the caller records the lock for release.
    Acquired,
    /// Already held in a compatible (or upgraded-in-place) mode — nothing
    /// to record.
    Held,
    /// Enqueued — the caller must park and retry the same acquire when the
    /// scheduler wakes it.
    Wait,
    /// Granted while the caller was parked — the caller records the lock
    /// for release and resumes.
    WaitGranted,
    /// An upgrade granted while the caller was parked — the lock was
    /// already recorded at its original Shared acquisition.
    WaitUpgraded,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    /// An upgrade waiter already holds the lock Shared and sits at the
    /// queue front until it is the sole holder.
    upgrade: bool,
}

#[derive(Debug)]
struct LockEntry {
    key: u64,
    mode: LockMode,
    holders: Vec<TxnId>,
    waiters: VecDeque<Waiter>,
}

/// The lock table.
#[derive(Debug)]
pub struct LockMgr {
    buckets: Vec<Vec<LockEntry>>,
    /// Simulated base address; bucket i lives at `addr + i*64`.
    addr: u64,
    mask: u64,
    /// Extra instructions charged per acquire/release, modelling
    /// latch/CAS contention among the clients sharing this engine
    /// (see [`instr::LOCK_CONTEND`]). Zero by default: captures are
    /// byte-identical unless a deployment opts in.
    contention: u32,
    /// txn → key it is parked on (each txn waits on at most one key).
    // lint:allow(hash-order): per-txn lookups only; see module note
    waiting: HashMap<TxnId, u64>,
    /// Grants decided while the winner was parked: txn → (key, upgrade).
    // lint:allow(hash-order): per-txn lookups only; see module note
    granted: HashMap<TxnId, (u64, bool)>,
    /// Deadlock victims to notify at their next acquire: txn → key.
    // lint:allow(hash-order): per-txn lookups only; see module note
    victims: HashMap<TxnId, u64>,
    /// Wake notifications (grants + victims) since the last drain, in
    /// decision order.
    woken: Vec<TxnId>,
}

impl LockMgr {
    /// `n_buckets` is rounded up to a power of two.
    pub fn new(space: &AddressSpace, n_buckets: usize) -> Self {
        let n = n_buckets.next_power_of_two().max(64);
        LockMgr {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            addr: space.alloc("lock-table", n as u64 * 64),
            mask: (n - 1) as u64,
            contention: 0,
            // lint:allow(hash-order): keyed-lookup maps, justified at their declarations
            waiting: HashMap::new(),
            granted: HashMap::new(), // lint:allow(hash-order): keyed-lookup map, justified at its declaration
            victims: HashMap::new(), // lint:allow(hash-order): keyed-lookup map, justified at its declaration
            woken: Vec::new(),
        }
    }

    /// Set the contention surcharge charged on every acquire/release
    /// (extra lock-manager instructions per operation). The policy that
    /// derives it from a sharer count lives on
    /// [`Database::set_lock_sharers`](crate::Database::set_lock_sharers).
    pub fn set_contention(&mut self, extra: u32) {
        self.contention = extra;
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative hash, then mask.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    #[inline]
    fn bucket_addr(&self, b: usize) -> u64 {
        self.addr + (b as u64) * 64
    }

    /// Acquire `key` in `mode` for `txn`, no-wait: conflicts return
    /// [`EngineError::LockConflict`] immediately. Re-acquisition and S→X
    /// upgrade by a sole holder succeed. Returns `true` if the lock is
    /// newly granted (the caller records it for release).
    pub fn acquire(
        &mut self,
        txn: TxnId,
        key: u64,
        mode: LockMode,
        tc: &mut TraceCtx,
    ) -> Result<bool> {
        match self.acquire_inner(txn, key, mode, false, tc)? {
            Grant::Acquired => Ok(true),
            Grant::Held => Ok(false),
            // Unreachable in no-wait mode.
            g => unreachable!("no-wait acquire returned {g:?}"),
        }
    }

    /// Acquire `key` in `mode` for `txn` under the queued discipline; see
    /// the module docs for the [`Grant`] protocol.
    pub fn acquire_wait(
        &mut self,
        txn: TxnId,
        key: u64,
        mode: LockMode,
        tc: &mut TraceCtx,
    ) -> Result<Grant> {
        self.acquire_inner(txn, key, mode, true, tc)
    }

    fn acquire_inner(
        &mut self,
        txn: TxnId,
        key: u64,
        mode: LockMode,
        wait: bool,
        tc: &mut TraceCtx,
    ) -> Result<Grant> {
        let b = self.bucket_of(key);
        tc.charge(tc.r.lock_mgr, instr::LOCK_ACQUIRE + self.contention);
        // The bucket header is a dependent load; the grant writes it.
        tc.load_dep(self.bucket_addr(b), 16);

        if wait {
            // Victim notification takes priority: the txn was chosen while
            // parked and must abort.
            if self.victims.remove(&txn).is_some() {
                tc.charge(tc.r.lock_mgr, instr::LOCK_WAKE);
                tc.wake();
                return Err(EngineError::Deadlock { key });
            }
            // Grant decided while parked: the lock is already held; report
            // it so the caller's bookkeeping catches up.
            if let Some((gkey, upgrade)) = self.granted.remove(&txn) {
                debug_assert_eq!(gkey, key, "parked grant must match the retried key");
                tc.charge(tc.r.lock_mgr, instr::LOCK_WAKE);
                tc.wake();
                return Ok(if upgrade {
                    Grant::WaitUpgraded
                } else {
                    Grant::WaitGranted
                });
            }
        }

        let addr = self.bucket_addr(b);
        let bucket = &mut self.buckets[b];
        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            let holds = e.holders.contains(&txn);
            match (mode, e.mode) {
                // Re-acquire in same-or-weaker mode.
                (LockMode::Shared, _) if holds => return Ok(Grant::Held),
                (LockMode::Exclusive, LockMode::Exclusive) if holds => return Ok(Grant::Held),
                // Upgrade by the sole holder.
                (LockMode::Exclusive, LockMode::Shared) if holds && e.holders.len() == 1 => {
                    e.mode = LockMode::Exclusive;
                    tc.store(addr, 16);
                    tc.fence();
                    return Ok(Grant::Held);
                }
                // Shared join on a shared lock (FIFO: not past waiters).
                (LockMode::Shared, LockMode::Shared) if e.waiters.is_empty() => {
                    e.holders.push(txn);
                    tc.store(addr, 16);
                    tc.fence();
                    return Ok(Grant::Acquired);
                }
                _ => {
                    if !wait {
                        return Err(EngineError::LockConflict { key });
                    }
                    // Enqueue: upgrades go to the front (they already hold
                    // the lock and everyone behind them needs it free).
                    let w = Waiter {
                        txn,
                        mode,
                        upgrade: holds,
                    };
                    if holds {
                        e.waiters.push_front(w);
                    } else {
                        e.waiters.push_back(w);
                    }
                    self.waiting.insert(txn, key);
                    tc.charge(tc.r.lock_mgr, instr::LOCK_ENQUEUE);
                    tc.store(addr, 16);
                    tc.fence();
                    return self.resolve_deadlocks(txn, key, tc);
                }
            }
        }
        bucket.push(LockEntry {
            key,
            mode,
            holders: vec![txn],
            waiters: VecDeque::new(),
        });
        tc.store(addr, 16);
        tc.fence();
        Ok(Grant::Acquired)
    }

    /// After enqueuing `txn` on `key`: hunt waits-for cycles; abort the
    /// youngest member of each until none remain that involve `txn`.
    /// Break every waits-for cycle through `txn`, choosing victims until
    /// the graph is acyclic or `txn` itself dies.
    ///
    /// **Victim rule (pinned):** the victim is the cycle member with the
    /// numerically largest [`TxnId`]. Ids are handed out by a monotone
    /// counter and never reused, so "largest id" is exactly "youngest
    /// transaction" — the least-work-lost heuristic — and, because ids
    /// are unique, the `max` is a total order with no tie to break:
    /// two captures of the same schedule always kill the same victim.
    /// Replay determinism depends on this; do not swap in a
    /// fewest-locks/least-undo heuristic without versioning the captures
    /// (see `victim_is_the_largest_txn_id_deterministically`).
    fn resolve_deadlocks(&mut self, txn: TxnId, key: u64, tc: &mut TraceCtx) -> Result<Grant> {
        loop {
            let Some(cycle) = self.find_cycle(txn) else {
                tc.block();
                return Ok(Grant::Wait);
            };
            tc.charge(
                tc.r.lock_mgr,
                instr::DEADLOCK_SCAN * cycle.len().max(1) as u32,
            );
            // lint:allow(panic): find_cycle returned Some, so the Vec has at least one member
            let victim = *cycle.iter().max().expect("cycle is nonempty");
            if victim == txn {
                self.remove_waiter(txn, tc);
                return Err(EngineError::Deadlock { key });
            }
            // A parked waiter dies: dequeue it now (so grants can flow) and
            // notify it through the scheduler; its held locks release when
            // the transaction aborts.
            let vkey = self
                .waiting
                .get(&victim)
                .copied()
                // lint:allow(panic): the cycle was built from `waiting` edges this same pass, with no mutation in between
                .expect("cycle members are waiters");
            self.remove_waiter(victim, tc);
            self.victims.insert(victim, vkey);
            self.woken.push(victim);
        }
    }

    /// Transactions to resume since the last call: lock grants and victim
    /// notifications, in decision order.
    pub fn drain_woken(&mut self) -> Vec<TxnId> {
        std::mem::take(&mut self.woken)
    }

    /// Abort-path cleanup: drop `txn`'s waiter entry (if any), any
    /// unclaimed parked grant, and any pending victim mark. Returns lock
    /// table state to what release() expects.
    pub fn cancel_wait(&mut self, txn: TxnId, tc: &mut TraceCtx) {
        self.victims.remove(&txn);
        if self.waiting.contains_key(&txn) {
            self.remove_waiter(txn, tc);
        }
        if let Some((key, upgrade)) = self.granted.remove(&txn) {
            // Granted while parked but never observed by the owner: for a
            // fresh grant the holder entry must go (the owner never
            // recorded it, so release() will not); an upgrade reverts on
            // the ordinary release of the originally-recorded lock.
            if !upgrade {
                self.release(txn, key, tc);
            }
        }
    }

    /// Drop `txn` from `key`'s wait queue and re-run the grant pass (its
    /// departure may unblock the queue).
    fn remove_waiter(&mut self, txn: TxnId, tc: &mut TraceCtx) {
        let Some(key) = self.waiting.remove(&txn) else {
            return;
        };
        let b = self.bucket_of(key);
        let addr = self.bucket_addr(b);
        let bucket = &mut self.buckets[b];
        if let Some(i) = bucket.iter().position(|e| e.key == key) {
            bucket[i].waiters.retain(|w| w.txn != txn);
            tc.store(addr, 16);
            self.grant_pass(b, i, tc);
        }
    }

    /// Release one lock held by `txn`.
    pub fn release(&mut self, txn: TxnId, key: u64, tc: &mut TraceCtx) {
        let b = self.bucket_of(key);
        tc.charge(tc.r.lock_mgr, instr::LOCK_RELEASE + self.contention);
        tc.store(self.bucket_addr(b), 16);
        let bucket = &mut self.buckets[b];
        if let Some(i) = bucket.iter().position(|e| e.key == key) {
            bucket[i].holders.retain(|&t| t != txn);
            self.grant_pass(b, i, tc);
        }
    }

    /// FIFO grant pass over entry `i` of bucket `b`: grant from the front
    /// while compatible, recording parked grants; drop the entry when
    /// fully drained.
    fn grant_pass(&mut self, b: usize, i: usize, tc: &mut TraceCtx) {
        let addr = self.bucket_addr(b);
        let LockMgr {
            buckets,
            waiting,
            granted,
            woken,
            ..
        } = self;
        let e = &mut buckets[b][i];
        let mut granted_any = false;
        while let Some(w) = e.waiters.front() {
            let can = if e.holders.is_empty() {
                true
            } else if w.upgrade {
                e.holders.len() == 1 && e.holders[0] == w.txn
            } else {
                w.mode == LockMode::Shared && e.mode == LockMode::Shared
            };
            if !can {
                break;
            }
            // lint:allow(panic): the `while let Some` guard above proved the queue non-empty
            let w = e.waiters.pop_front().expect("front exists");
            if w.upgrade {
                e.mode = LockMode::Exclusive;
            } else {
                if e.holders.is_empty() {
                    e.mode = w.mode;
                }
                e.holders.push(w.txn);
            }
            waiting.remove(&w.txn);
            granted.insert(w.txn, (e.key, w.upgrade));
            woken.push(w.txn);
            granted_any = true;
        }
        let drained = e.holders.is_empty() && e.waiters.is_empty();
        if granted_any {
            tc.store(addr, 16);
            tc.fence();
        }
        if drained {
            buckets[b].swap_remove(i);
        }
    }

    // ---- waits-for graph ----

    /// Who `t` waits on: the holders of its awaited lock plus the waiters
    /// queued ahead of it (FIFO: they are granted first). Empty if `t` is
    /// not waiting.
    fn wait_targets(&self, t: TxnId) -> Vec<TxnId> {
        let Some(&key) = self.waiting.get(&t) else {
            return Vec::new();
        };
        let b = self.bucket_of(key);
        let Some(e) = self.buckets[b].iter().find(|e| e.key == key) else {
            return Vec::new();
        };
        let mut out: Vec<TxnId> = e.holders.iter().copied().filter(|&h| h != t).collect();
        for w in &e.waiters {
            if w.txn == t {
                break;
            }
            out.push(w.txn);
        }
        out
    }

    /// A waits-for cycle through `start`, if any (the members, in path
    /// order).
    fn find_cycle(&self, start: TxnId) -> Option<Vec<TxnId>> {
        fn dfs(
            lm: &LockMgr,
            start: TxnId,
            cur: TxnId,
            path: &mut Vec<TxnId>,
            visited: &mut Vec<TxnId>,
        ) -> bool {
            for nxt in lm.wait_targets(cur) {
                if nxt == start {
                    return true;
                }
                if !visited.contains(&nxt) {
                    visited.push(nxt);
                    path.push(nxt);
                    if dfs(lm, start, nxt, path, visited) {
                        return true;
                    }
                    path.pop();
                }
            }
            false
        }
        let mut path = vec![start];
        let mut visited = vec![start];
        if dfs(self, start, start, &mut path, &mut visited) {
            Some(path)
        } else {
            None
        }
    }

    /// The current waits-for graph, sorted by waiter id (diagnostics and
    /// the acyclicity property test).
    pub fn wait_graph(&self) -> Vec<(TxnId, Vec<TxnId>)> {
        let mut waiters: Vec<TxnId> = self.waiting.keys().copied().collect();
        waiters.sort_unstable();
        waiters
            .into_iter()
            .map(|t| (t, self.wait_targets(t)))
            .collect()
    }

    /// True if the waits-for graph contains any cycle.
    pub fn has_deadlock(&self) -> bool {
        self.waiting.keys().any(|&t| self.find_cycle(t).is_some())
    }

    /// Number of live lock entries (diagnostics/tests).
    pub fn live_locks(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Number of transactions parked on wait queues.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Snapshot of every live entry: (key, mode, holders, queued waiters),
    /// in bucket order (tests).
    pub fn snapshot(&self) -> Vec<(u64, LockMode, Vec<TxnId>, Vec<TxnId>)> {
        self.buckets
            .iter()
            .flat_map(|bucket| {
                bucket.iter().map(|e| {
                    (
                        e.key,
                        e.mode,
                        e.holders.clone(),
                        e.waiters.iter().map(|w| w.txn).collect(),
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use dbcmp_trace::CodeRegions;

    fn setup() -> (LockMgr, TraceCtx) {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        let space = AddressSpace::new();
        (LockMgr::new(&space, 1024), TraceCtx::null(er))
    }

    #[test]
    fn shared_locks_coexist_exclusive_conflicts() {
        let (mut lm, mut tc) = setup();
        assert!(lm.acquire(1, 42, LockMode::Shared, &mut tc).unwrap());
        assert!(lm.acquire(2, 42, LockMode::Shared, &mut tc).unwrap());
        assert!(matches!(
            lm.acquire(3, 42, LockMode::Exclusive, &mut tc),
            Err(EngineError::LockConflict { key: 42 })
        ));
    }

    #[test]
    fn exclusive_blocks_shared() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap();
        assert!(lm.acquire(2, 7, LockMode::Shared, &mut tc).is_err());
        assert!(lm.acquire(2, 7, LockMode::Exclusive, &mut tc).is_err());
    }

    #[test]
    fn reacquire_is_idempotent() {
        let (mut lm, mut tc) = setup();
        assert!(lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap());
        assert!(!lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap());
        assert!(!lm.acquire(1, 7, LockMode::Shared, &mut tc).unwrap());
        assert_eq!(lm.live_locks(), 1);
    }

    #[test]
    fn upgrade_sole_holder_succeeds_shared_blocks() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 9, LockMode::Shared, &mut tc).unwrap();
        assert!(!lm.acquire(1, 9, LockMode::Exclusive, &mut tc).unwrap());
        // Now X-held; another S fails.
        assert!(lm.acquire(2, 9, LockMode::Shared, &mut tc).is_err());

        // Upgrade with two sharers fails.
        lm.acquire(1, 10, LockMode::Shared, &mut tc).unwrap();
        lm.acquire(2, 10, LockMode::Shared, &mut tc).unwrap();
        assert!(lm.acquire(1, 10, LockMode::Exclusive, &mut tc).is_err());
    }

    #[test]
    fn release_frees_the_lock() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 5, LockMode::Exclusive, &mut tc).unwrap();
        lm.release(1, 5, &mut tc);
        assert_eq!(lm.live_locks(), 0);
        assert!(lm.acquire(2, 5, LockMode::Exclusive, &mut tc).unwrap());
    }

    #[test]
    fn distinct_keys_do_not_conflict() {
        let (mut lm, mut tc) = setup();
        for k in 0..100 {
            assert!(lm
                .acquire(k % 5, 1000 + k, LockMode::Exclusive, &mut tc)
                .unwrap());
        }
        assert_eq!(lm.live_locks(), 100);
    }

    // ---- queued discipline ----

    #[test]
    fn conflicting_request_queues_and_is_granted_fifo() {
        let (mut lm, mut tc) = setup();
        assert_eq!(
            lm.acquire_wait(1, 5, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::Acquired
        );
        assert_eq!(
            lm.acquire_wait(2, 5, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::Wait
        );
        assert_eq!(
            lm.acquire_wait(3, 5, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::Wait
        );
        assert_eq!(lm.waiting_count(), 2);
        assert!(lm.drain_woken().is_empty());

        lm.release(1, 5, &mut tc);
        // FIFO: txn 2 first.
        assert_eq!(lm.drain_woken(), vec![2]);
        assert_eq!(
            lm.acquire_wait(2, 5, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::WaitGranted
        );
        lm.release(2, 5, &mut tc);
        assert_eq!(lm.drain_woken(), vec![3]);
        assert_eq!(
            lm.acquire_wait(3, 5, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::WaitGranted
        );
        lm.release(3, 5, &mut tc);
        assert_eq!(lm.live_locks(), 0);
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn shared_waiters_granted_in_a_batch() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 8, LockMode::Exclusive, &mut tc).unwrap();
        assert_eq!(
            lm.acquire_wait(2, 8, LockMode::Shared, &mut tc).unwrap(),
            Grant::Wait
        );
        assert_eq!(
            lm.acquire_wait(3, 8, LockMode::Shared, &mut tc).unwrap(),
            Grant::Wait
        );
        lm.release(1, 8, &mut tc);
        assert_eq!(lm.drain_woken(), vec![2, 3]);
        assert_eq!(
            lm.acquire_wait(2, 8, LockMode::Shared, &mut tc).unwrap(),
            Grant::WaitGranted
        );
        assert_eq!(
            lm.acquire_wait(3, 8, LockMode::Shared, &mut tc).unwrap(),
            Grant::WaitGranted
        );
    }

    #[test]
    fn shared_join_does_not_jump_the_queue() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 9, LockMode::Shared, &mut tc).unwrap();
        // X waiter queues.
        assert_eq!(
            lm.acquire_wait(2, 9, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::Wait
        );
        // A later S request must not starve the X waiter.
        assert_eq!(
            lm.acquire_wait(3, 9, LockMode::Shared, &mut tc).unwrap(),
            Grant::Wait
        );
        lm.release(1, 9, &mut tc);
        assert_eq!(lm.drain_woken(), vec![2]);
    }

    #[test]
    fn two_txn_cycle_aborts_the_youngest() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 100, LockMode::Exclusive, &mut tc)
            .unwrap();
        lm.acquire_wait(2, 200, LockMode::Exclusive, &mut tc)
            .unwrap();
        // Older txn 1 parks on 200.
        assert_eq!(
            lm.acquire_wait(1, 200, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait
        );
        // Younger txn 2 closes the cycle → it is the victim, immediately.
        assert!(matches!(
            lm.acquire_wait(2, 100, LockMode::Exclusive, &mut tc),
            Err(EngineError::Deadlock { key: 100 })
        ));
        assert!(!lm.has_deadlock(), "resolution leaves the graph acyclic");
        // Victim aborts: releases its held lock; survivor is granted.
        lm.release(2, 200, &mut tc);
        assert_eq!(lm.drain_woken(), vec![1]);
        assert_eq!(
            lm.acquire_wait(1, 200, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::WaitGranted
        );
        lm.release(1, 100, &mut tc);
        lm.release(1, 200, &mut tc);
        assert_eq!(lm.live_locks(), 0);
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn victim_is_the_largest_txn_id_deterministically() {
        // Pins the victim rule: largest TxnId in the cycle dies, no
        // matter which member's request closes the cycle or in which
        // order locks were taken. A three-member cycle 5→9→7→5 (waits-for
        // edges) must always kill 9.
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(5, 100, LockMode::Exclusive, &mut tc)
            .unwrap();
        lm.acquire_wait(9, 200, LockMode::Exclusive, &mut tc)
            .unwrap();
        lm.acquire_wait(7, 300, LockMode::Exclusive, &mut tc)
            .unwrap();
        // 5 waits on 9's lock, 9 waits on 7's lock.
        assert_eq!(
            lm.acquire_wait(5, 200, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait
        );
        assert_eq!(
            lm.acquire_wait(9, 300, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait
        );
        // 7 closes the cycle. It is NOT the youngest: 9 is, and 9 is a
        // parked bystander — it must still be the one chosen.
        assert_eq!(
            lm.acquire_wait(7, 100, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait,
            "the requester survives; the youngest parked member dies"
        );
        assert!(!lm.has_deadlock());
        // The victim notification reached 9 through the wake channel.
        assert_eq!(lm.drain_woken(), vec![9]);
        // 9's retry of its parked request reports the deadlock.
        assert!(matches!(
            lm.acquire_wait(9, 300, LockMode::Exclusive, &mut tc),
            Err(EngineError::Deadlock { .. })
        ));
        // 9 aborts; the survivors drain in grant order and finish.
        lm.release(9, 200, &mut tc);
        assert_eq!(lm.drain_woken(), vec![5]);
        for (t, keys) in [(5u64, [100u64, 200]), (7, [300, 100])] {
            for k in keys {
                lm.release(t, k, &mut tc);
            }
        }
        assert_eq!(lm.drain_woken(), vec![7]);
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn parked_victim_is_woken_and_notified() {
        let (mut lm, mut tc) = setup();
        // Younger txn 2 parks first; older txn 1 then closes the cycle, so
        // the victim is the *parked* waiter, not the requester.
        lm.acquire_wait(1, 100, LockMode::Exclusive, &mut tc)
            .unwrap();
        lm.acquire_wait(2, 200, LockMode::Exclusive, &mut tc)
            .unwrap();
        assert_eq!(
            lm.acquire_wait(2, 100, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait
        );
        // Requester 1 parks (victim is 2, woken for notification).
        assert_eq!(
            lm.acquire_wait(1, 200, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::Wait
        );
        assert_eq!(lm.drain_woken(), vec![2]);
        assert!(matches!(
            lm.acquire_wait(2, 100, LockMode::Exclusive, &mut tc),
            Err(EngineError::Deadlock { .. })
        ));
        // Victim aborts → survivor granted.
        lm.release(2, 200, &mut tc);
        assert_eq!(lm.drain_woken(), vec![1]);
        assert_eq!(
            lm.acquire_wait(1, 200, LockMode::Exclusive, &mut tc)
                .unwrap(),
            Grant::WaitGranted
        );
    }

    #[test]
    fn upgrade_waits_for_other_sharers_then_wins() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 4, LockMode::Shared, &mut tc).unwrap();
        lm.acquire_wait(2, 4, LockMode::Shared, &mut tc).unwrap();
        // Sole-holder condition fails → upgrade parks at the queue front.
        assert_eq!(
            lm.acquire_wait(1, 4, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::Wait
        );
        lm.release(2, 4, &mut tc);
        assert_eq!(lm.drain_woken(), vec![1]);
        assert_eq!(
            lm.acquire_wait(1, 4, LockMode::Exclusive, &mut tc).unwrap(),
            Grant::WaitUpgraded
        );
        let snap = lm.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, LockMode::Exclusive);
        assert_eq!(snap[0].2, vec![1]);
    }

    #[test]
    fn cancel_wait_unblocks_the_queue() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 6, LockMode::Shared, &mut tc).unwrap();
        lm.acquire_wait(2, 6, LockMode::Exclusive, &mut tc).unwrap();
        assert_eq!(
            lm.acquire_wait(3, 6, LockMode::Shared, &mut tc).unwrap(),
            Grant::Wait
        );
        // Txn 2 gives up its wait: the S waiter behind it can now join.
        lm.cancel_wait(2, &mut tc);
        assert_eq!(lm.drain_woken(), vec![3]);
        assert_eq!(
            lm.acquire_wait(3, 6, LockMode::Shared, &mut tc).unwrap(),
            Grant::WaitGranted
        );
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn cancel_wait_returns_unclaimed_parked_grant() {
        let (mut lm, mut tc) = setup();
        lm.acquire_wait(1, 3, LockMode::Exclusive, &mut tc).unwrap();
        lm.acquire_wait(2, 3, LockMode::Exclusive, &mut tc).unwrap();
        lm.release(1, 3, &mut tc);
        assert_eq!(lm.drain_woken(), vec![2]);
        // Txn 2 aborts before its retry observes the grant.
        lm.cancel_wait(2, &mut tc);
        assert_eq!(lm.live_locks(), 0, "unclaimed grant must not leak");
    }
}
