//! Row-level two-phase-locking lock manager.
//!
//! A hash table of lock buckets; each bucket occupies exactly one cache
//! line in the simulated address space. Lock words are *the* shared-write
//! hot spots of an OLTP engine: every transaction from every client writes
//! them, which is what turns into coherence traffic on an SMP and into
//! shared-L2/L1-to-L1 transfers on a CMP (paper §5.2, Fig. 7).
//!
//! Conflicts are detected immediately (no blocking — the engine is
//! single-threaded per statement): the caller receives
//! [`EngineError::LockConflict`] and is expected to abort and retry, a
//! no-wait 2PL discipline.

use crate::costs::instr;
use crate::error::{EngineError, Result};
use crate::tctx::TraceCtx;
use crate::txn::TxnId;
use dbcmp_trace::AddressSpace;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct LockEntry {
    key: u64,
    mode: LockMode,
    holders: Vec<TxnId>,
}

/// The lock table.
#[derive(Debug)]
pub struct LockMgr {
    buckets: Vec<Vec<LockEntry>>,
    /// Simulated base address; bucket i lives at `addr + i*64`.
    addr: u64,
    mask: u64,
}

impl LockMgr {
    /// `n_buckets` is rounded up to a power of two.
    pub fn new(space: &AddressSpace, n_buckets: usize) -> Self {
        let n = n_buckets.next_power_of_two().max(64);
        LockMgr {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            addr: space.alloc("lock-table", n as u64 * 64),
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative hash, then mask.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    /// Acquire `key` in `mode` for `txn`. Re-acquisition and S→X upgrade
    /// by a sole holder succeed. Returns `true` if the lock is newly
    /// granted (the caller records it for release).
    pub fn acquire(
        &mut self,
        txn: TxnId,
        key: u64,
        mode: LockMode,
        tc: &mut TraceCtx,
    ) -> Result<bool> {
        let b = self.bucket_of(key);
        tc.charge(tc.r.lock_mgr, instr::LOCK_ACQUIRE);
        // The bucket header is a dependent load; the grant writes it.
        tc.load_dep(self.addr + (b as u64) * 64, 16);

        let bucket = &mut self.buckets[b];
        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            let holds = e.holders.contains(&txn);
            match (mode, e.mode) {
                // Re-acquire in same-or-weaker mode.
                (LockMode::Shared, _) if holds => return Ok(false),
                (LockMode::Exclusive, LockMode::Exclusive) if holds => return Ok(false),
                // Upgrade by the sole holder.
                (LockMode::Exclusive, LockMode::Shared) if holds && e.holders.len() == 1 => {
                    e.mode = LockMode::Exclusive;
                    tc.store(self.addr + (b as u64) * 64, 16);
                    tc.fence();
                    return Ok(false);
                }
                // Shared join on a shared lock.
                (LockMode::Shared, LockMode::Shared) => {
                    e.holders.push(txn);
                    tc.store(self.addr + (b as u64) * 64, 16);
                    tc.fence();
                    return Ok(true);
                }
                _ => return Err(EngineError::LockConflict { key }),
            }
        }
        bucket.push(LockEntry {
            key,
            mode,
            holders: vec![txn],
        });
        tc.store(self.addr + (b as u64) * 64, 16);
        tc.fence();
        Ok(true)
    }

    /// Release one lock held by `txn`.
    pub fn release(&mut self, txn: TxnId, key: u64, tc: &mut TraceCtx) {
        let b = self.bucket_of(key);
        tc.charge(tc.r.lock_mgr, instr::LOCK_RELEASE);
        tc.store(self.addr + (b as u64) * 64, 16);
        let bucket = &mut self.buckets[b];
        if let Some(i) = bucket.iter().position(|e| e.key == key) {
            bucket[i].holders.retain(|&t| t != txn);
            if bucket[i].holders.is_empty() {
                bucket.swap_remove(i);
            }
        }
    }

    /// Number of live lock entries (diagnostics/tests).
    pub fn live_locks(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use dbcmp_trace::CodeRegions;

    fn setup() -> (LockMgr, TraceCtx) {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        let space = AddressSpace::new();
        (LockMgr::new(&space, 1024), TraceCtx::null(er))
    }

    #[test]
    fn shared_locks_coexist_exclusive_conflicts() {
        let (mut lm, mut tc) = setup();
        assert!(lm.acquire(1, 42, LockMode::Shared, &mut tc).unwrap());
        assert!(lm.acquire(2, 42, LockMode::Shared, &mut tc).unwrap());
        assert!(matches!(
            lm.acquire(3, 42, LockMode::Exclusive, &mut tc),
            Err(EngineError::LockConflict { key: 42 })
        ));
    }

    #[test]
    fn exclusive_blocks_shared() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap();
        assert!(lm.acquire(2, 7, LockMode::Shared, &mut tc).is_err());
        assert!(lm.acquire(2, 7, LockMode::Exclusive, &mut tc).is_err());
    }

    #[test]
    fn reacquire_is_idempotent() {
        let (mut lm, mut tc) = setup();
        assert!(lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap());
        assert!(!lm.acquire(1, 7, LockMode::Exclusive, &mut tc).unwrap());
        assert!(!lm.acquire(1, 7, LockMode::Shared, &mut tc).unwrap());
        assert_eq!(lm.live_locks(), 1);
    }

    #[test]
    fn upgrade_sole_holder_succeeds_shared_blocks() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 9, LockMode::Shared, &mut tc).unwrap();
        assert!(!lm.acquire(1, 9, LockMode::Exclusive, &mut tc).unwrap());
        // Now X-held; another S fails.
        assert!(lm.acquire(2, 9, LockMode::Shared, &mut tc).is_err());

        // Upgrade with two sharers fails.
        lm.acquire(1, 10, LockMode::Shared, &mut tc).unwrap();
        lm.acquire(2, 10, LockMode::Shared, &mut tc).unwrap();
        assert!(lm.acquire(1, 10, LockMode::Exclusive, &mut tc).is_err());
    }

    #[test]
    fn release_frees_the_lock() {
        let (mut lm, mut tc) = setup();
        lm.acquire(1, 5, LockMode::Exclusive, &mut tc).unwrap();
        lm.release(1, 5, &mut tc);
        assert_eq!(lm.live_locks(), 0);
        assert!(lm.acquire(2, 5, LockMode::Exclusive, &mut tc).unwrap());
    }

    #[test]
    fn distinct_keys_do_not_conflict() {
        let (mut lm, mut tc) = setup();
        for k in 0..100 {
            assert!(lm
                .acquire(k % 5, 1000 + k, LockMode::Exclusive, &mut tc)
                .unwrap());
        }
        assert_eq!(lm.live_locks(), 100);
    }
}
