//! Trace context: the engine's handle for charging instructions and
//! recording memory accesses.
//!
//! One `TraceCtx` exists per client session. It bundles the per-thread
//! [`Tracer`] with the engine's region ids so call sites read naturally:
//! `tc.charge(tc.r.lock_mgr, instr::LOCK_ACQUIRE)`.

use dbcmp_trace::{AddressSpace, RegionId, ScratchArena, SimAddr, ThreadTrace, Tracer};

use crate::costs::EngineRegions;

/// Per-client trace capture context.
#[derive(Debug)]
pub struct TraceCtx {
    tracer: Tracer,
    /// Engine region ids (copy).
    pub r: EngineRegions,
    /// Pre-carved private scratch space. When set, operator scratch
    /// allocations (sort runs, hash tables) come from here instead of
    /// the shared bump allocator, decoupling this client's addresses
    /// from other clients' allocation timing (parallel capture).
    scratch: Option<ScratchArena>,
}

impl TraceCtx {
    /// A context that records full event streams (capture mode).
    pub fn recording(r: EngineRegions) -> Self {
        TraceCtx {
            tracer: Tracer::recording(),
            r,
            scratch: None,
        }
    }

    /// Counts instructions but records no events — for native benchmarks.
    pub fn null(r: EngineRegions) -> Self {
        TraceCtx {
            tracer: Tracer::null(),
            r,
            scratch: None,
        }
    }

    /// Route operator scratch allocations through a private arena (see
    /// [`AddressSpace::reserve_arena`]).
    pub fn set_scratch(&mut self, arena: ScratchArena) {
        self.scratch = Some(arena);
    }

    /// Allocate operator scratch (sort buffers, hash tables): from this
    /// context's private arena when one is set, else anonymously from
    /// the shared `space`. Capture drivers that run clients in parallel
    /// must set an arena — the shared path's addresses depend on
    /// cross-client allocation order.
    pub fn scratch_alloc(&mut self, space: &AddressSpace, bytes: u64) -> SimAddr {
        match &mut self.scratch {
            Some(arena) => arena.alloc(bytes),
            None => space.alloc_anon(bytes),
        }
    }

    /// Charge `n` instructions to `region`.
    #[inline]
    pub fn charge(&mut self, region: RegionId, n: u32) {
        self.tracer.exec(region, n);
    }

    /// Record a data load.
    #[inline]
    pub fn load(&mut self, addr: u64, size: u32) {
        self.tracer.load(addr, size);
    }

    /// Record a *dependent* load (pointer chase — gates OoO overlap).
    #[inline]
    pub fn load_dep(&mut self, addr: u64, size: u32) {
        self.tracer.load_dep(addr, size);
    }

    /// Record a data store.
    #[inline]
    pub fn store(&mut self, addr: u64, size: u32) {
        self.tracer.store(addr, size);
    }

    /// Ordering fence (lock handoff, commit point).
    #[inline]
    pub fn fence(&mut self) {
        self.tracer.fence();
    }

    /// Mark a completed unit of work (transaction or query).
    #[inline]
    pub fn unit_end(&mut self) {
        self.tracer.unit_end();
    }

    /// Mark a lock-wait block (the session parks until woken).
    #[inline]
    pub fn block(&mut self) {
        self.tracer.block();
    }

    /// Mark resumption after a lock grant or victim notification.
    #[inline]
    pub fn wake(&mut self) {
        self.tracer.wake();
    }

    /// Record sending a `bytes`-byte message to another engine instance
    /// (shared-nothing deployments; replay charges interconnect cost).
    #[inline]
    pub fn remote_send(&mut self, bytes: u32) {
        self.tracer.remote_send(bytes);
    }

    /// Record waiting for a `bytes`-byte message from another instance.
    #[inline]
    pub fn remote_recv(&mut self, bytes: u32) {
        self.tracer.remote_recv(bytes);
    }

    /// Instructions charged so far.
    pub fn instrs(&self) -> u64 {
        self.tracer.instrs_so_far()
    }

    /// Finish capture.
    pub fn finish(self) -> ThreadTrace {
        self.tracer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcmp_trace::CodeRegions;

    #[test]
    fn charges_accumulate() {
        let mut regions = CodeRegions::new();
        let er = EngineRegions::register(&mut regions);
        let mut tc = TraceCtx::recording(er);
        tc.charge(tc.r.lock_mgr, 85);
        tc.load_dep(0x2000, 8);
        tc.store(0x2040, 16);
        tc.unit_end();
        let tr = tc.finish();
        assert_eq!(tr.instrs(), 85 + 2);
        assert_eq!(tr.units(), 1);
        assert!(tr.len() >= 3);
    }
}
