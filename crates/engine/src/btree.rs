//! B+Tree index over packed `u64` keys.
//!
//! Keys are unique (composite keys pack discriminators into the low bits,
//! so logical duplicates never collide); values are packed RIDs or counts.
//! Nodes hold up to [`ORDER`] keys; leaves are chained for range scans.
//!
//! Tracing: every descent emits a **dependent** load per level (the child
//! pointer cannot be known before the node header is read) — the pointer-
//! chase pattern that denies out-of-order cores their memory-level
//! parallelism on OLTP (paper §4). Binary search inside a node touches a
//! few of the node's cache lines; inserts store into the leaf.
//!
//! Deletion is by lazy leaf removal (no rebalancing): the tree never
//! shrinks structurally. This matches the workload mix (TPC-C deletes only
//! from NEW-ORDER, which is insert-balanced) and keeps the structure
//! simple; lookups and scans remain correct throughout.

use dbcmp_trace::AddressSpace;

use crate::costs::instr;
use crate::error::{EngineError, Result};
use crate::tctx::TraceCtx;

/// Maximum keys per node.
pub const ORDER: usize = 64;
/// Simulated bytes per node (header + keys + values/children).
const NODE_BYTES: u64 = 1152;
/// Offset of the key area within a node's simulated layout.
const KEYS_OFF: u64 = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: Option<u32>,
        addr: u64,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
        addr: u64,
    },
}

impl Node {
    fn addr(&self) -> u64 {
        match self {
            Node::Leaf { addr, .. } | Node::Internal { addr, .. } => *addr,
        }
    }
}

/// A unique-key B+Tree.
#[derive(Debug)]
pub struct BTree {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
}

/// Range-scan cursor (leaf position + exclusive upper bound).
#[derive(Debug, Clone)]
pub struct Cursor {
    node: Option<u32>,
    idx: usize,
    hi: u64,
}

impl BTree {
    /// An empty tree (a single leaf) with simulated node addresses.
    pub fn new(space: &AddressSpace) -> Self {
        let addr = space.alloc_anon(NODE_BYTES);
        BTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
                addr,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n as usize] {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Charge the traced cost of visiting a node: a dependent header load
    /// plus the binary-search touches inside the key area.
    fn visit_node(&self, node: u32, key: u64, tc: &mut TraceCtx, region: u16) {
        let n = &self.nodes[node as usize];
        let addr = n.addr();
        tc.charge(region, instr::BTREE_NODE);
        tc.load_dep(addr, 16);
        // Binary search touches ~3 probe points in the key array.
        let len = match n {
            Node::Leaf { keys, .. } | Node::Internal { keys, .. } => keys.len().max(1),
        } as u64;
        let probe = (key % len) * 8;
        tc.load(addr + KEYS_OFF + probe / 2, 8);
        tc.load(addr + KEYS_OFF + probe, 8);
        tc.load(addr + KEYS_OFF + (probe + len * 4).min(len * 8 - 8), 8);
    }

    /// Descend to the leaf that should contain `key`, recording the path.
    fn find_leaf(&self, key: u64, tc: &mut TraceCtx, region: u16, path: &mut Vec<u32>) -> u32 {
        let mut node = self.root;
        loop {
            self.visit_node(node, key, tc, region);
            match &self.nodes[node as usize] {
                Node::Internal { keys, children, .. } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    path.push(node);
                    node = children[idx];
                }
                Node::Leaf { .. } => return node,
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64, tc: &mut TraceCtx) -> Option<u64> {
        let region = tc.r.btree_search;
        let mut path = Vec::new();
        let leaf = self.find_leaf(key, tc, region, &mut path);
        let Node::Leaf { keys, vals, .. } = &self.nodes[leaf as usize] else {
            unreachable!()
        };
        keys.binary_search(&key).ok().map(|i| vals[i])
    }

    /// Insert a unique key.
    pub fn insert(
        &mut self,
        key: u64,
        val: u64,
        space: &AddressSpace,
        tc: &mut TraceCtx,
    ) -> Result<()> {
        let region = tc.r.btree_insert;
        let mut path = Vec::new();
        let leaf = self.find_leaf(key, tc, region, &mut path);
        let (leaf_addr, pos) = {
            let Node::Leaf {
                keys, vals, addr, ..
            } = &mut self.nodes[leaf as usize]
            else {
                unreachable!()
            };
            match keys.binary_search(&key) {
                Ok(_) => return Err(EngineError::DuplicateKey(key)),
                Err(pos) => {
                    keys.insert(pos, key);
                    vals.insert(pos, val);
                    (*addr, pos)
                }
            }
        };
        tc.charge(region, instr::BTREE_LEAF_INSERT);
        tc.store(leaf_addr + KEYS_OFF + (pos as u64) * 8, 16);
        self.len += 1;

        // Split up the path while nodes overflow.
        let mut child = leaf;
        loop {
            let overflow = match &self.nodes[child as usize] {
                Node::Leaf { keys, .. } | Node::Internal { keys, .. } => keys.len() > ORDER,
            };
            if !overflow {
                break;
            }
            tc.charge(region, instr::BTREE_SPLIT);
            let (sep, sibling) = self.split(child, space, tc);
            match path.pop() {
                Some(parent) => {
                    let Node::Internal {
                        keys,
                        children,
                        addr,
                    } = &mut self.nodes[parent as usize]
                    else {
                        unreachable!()
                    };
                    let idx = keys.partition_point(|&k| k <= sep);
                    keys.insert(idx, sep);
                    children.insert(idx + 1, sibling);
                    tc.store(*addr + KEYS_OFF + (idx as u64) * 8, 16);
                    child = parent;
                }
                None => {
                    // Root split.
                    let addr = space.alloc_anon(NODE_BYTES);
                    tc.store(addr, 32);
                    let new_root = Node::Internal {
                        keys: vec![sep],
                        children: vec![child, sibling],
                        addr,
                    };
                    self.nodes.push(new_root);
                    self.root = (self.nodes.len() - 1) as u32;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Split `node`, returning (separator key, new sibling id).
    fn split(&mut self, node: u32, space: &AddressSpace, tc: &mut TraceCtx) -> (u64, u32) {
        let new_addr = space.alloc_anon(NODE_BYTES);
        let sibling_id = self.nodes.len() as u32;
        let mid = ORDER.div_ceil(2);
        let (sep, sibling) = match &mut self.nodes[node as usize] {
            Node::Leaf {
                keys, vals, next, ..
            } => {
                let k2 = keys.split_off(mid);
                let v2 = vals.split_off(mid);
                let sep = k2[0];
                let sib = Node::Leaf {
                    keys: k2,
                    vals: v2,
                    next: *next,
                    addr: new_addr,
                };
                *next = Some(sibling_id);
                (sep, sib)
            }
            Node::Internal { keys, children, .. } => {
                // Middle key moves up; right half to the sibling.
                let sep = keys[mid];
                let k2 = keys.split_off(mid + 1);
                keys.pop(); // remove separator
                let c2 = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        keys: k2,
                        children: c2,
                        addr: new_addr,
                    },
                )
            }
        };
        // Writing out the new node.
        tc.store(new_addr, 256);
        self.nodes.push(sibling);
        (sep, sibling_id)
    }

    /// Remove a key (lazy: leaf-only). Returns the removed value.
    pub fn remove(&mut self, key: u64, tc: &mut TraceCtx) -> Option<u64> {
        let region = tc.r.btree_insert;
        let mut path = Vec::new();
        let leaf = self.find_leaf(key, tc, region, &mut path);
        let Node::Leaf {
            keys, vals, addr, ..
        } = &mut self.nodes[leaf as usize]
        else {
            unreachable!()
        };
        match keys.binary_search(&key) {
            Ok(i) => {
                let addr = *addr;
                keys.remove(i);
                let v = vals.remove(i);
                tc.charge(region, instr::BTREE_LEAF_INSERT);
                tc.store(addr + KEYS_OFF + (i as u64) * 8, 16);
                self.len -= 1;
                Some(v)
            }
            Err(_) => None,
        }
    }

    /// Open a cursor over `[lo, hi]` (inclusive bounds).
    pub fn cursor(&self, lo: u64, hi: u64, tc: &mut TraceCtx) -> Cursor {
        let region = tc.r.btree_search;
        let mut path = Vec::new();
        let leaf = self.find_leaf(lo, tc, region, &mut path);
        let Node::Leaf { keys, .. } = &self.nodes[leaf as usize] else {
            unreachable!()
        };
        let idx = keys.partition_point(|&k| k < lo);
        Cursor {
            node: Some(leaf),
            idx,
            hi,
        }
    }

    /// Advance a cursor; `None` when past the upper bound.
    pub fn cursor_next(&self, cur: &mut Cursor, tc: &mut TraceCtx) -> Option<(u64, u64)> {
        loop {
            let node = cur.node?;
            let Node::Leaf {
                keys,
                vals,
                next,
                addr,
            } = &self.nodes[node as usize]
            else {
                unreachable!()
            };
            if cur.idx < keys.len() {
                let k = keys[cur.idx];
                if k > cur.hi {
                    cur.node = None;
                    return None;
                }
                tc.load(*addr + KEYS_OFF + (cur.idx as u64) * 8, 16);
                let v = vals[cur.idx];
                cur.idx += 1;
                return Some((k, v));
            }
            // Chase the leaf chain.
            tc.charge(tc.r.btree_search, instr::BTREE_NODE / 2);
            tc.load_dep(*addr, 16);
            cur.node = *next;
            cur.idx = 0;
        }
    }

    /// Collect an inclusive range (convenience for small ranges).
    pub fn range(&self, lo: u64, hi: u64, tc: &mut TraceCtx) -> Vec<(u64, u64)> {
        let mut cur = self.cursor(lo, hi, tc);
        let mut out = Vec::new();
        while let Some(kv) = self.cursor_next(&mut cur, tc) {
            out.push(kv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use dbcmp_trace::CodeRegions;
    use proptest::prelude::*;

    fn setup() -> (BTree, AddressSpace, TraceCtx) {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        let space = AddressSpace::new();
        let tree = BTree::new(&space);
        (tree, space, TraceCtx::null(er))
    }

    #[test]
    fn insert_get_small() {
        let (mut t, space, mut tc) = setup();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10, &space, &mut tc).unwrap();
        }
        assert_eq!(t.get(3, &mut tc), Some(30));
        assert_eq!(t.get(9, &mut tc), Some(90));
        assert_eq!(t.get(4, &mut tc), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn duplicate_rejected() {
        let (mut t, space, mut tc) = setup();
        t.insert(1, 1, &space, &mut tc).unwrap();
        assert!(matches!(
            t.insert(1, 2, &space, &mut tc),
            Err(EngineError::DuplicateKey(1))
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_grow_height() {
        let (mut t, space, mut tc) = setup();
        for k in 0..10_000u64 {
            t.insert(k, k, &space, &mut tc).unwrap();
        }
        assert!(t.height() >= 3, "10k keys at order 64 must be ≥3 levels");
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k, &mut tc), Some(k));
        }
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn range_scan_ordered() {
        let (mut t, space, mut tc) = setup();
        for k in (0..1000u64).rev() {
            t.insert(k * 2, k, &space, &mut tc).unwrap();
        }
        let r = t.range(100, 200, &mut tc);
        let keys: Vec<u64> = r.iter().map(|&(k, _)| k).collect();
        let expect: Vec<u64> = (100..=200).filter(|k| k % 2 == 0).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn remove_then_miss() {
        let (mut t, space, mut tc) = setup();
        for k in 0..500u64 {
            t.insert(k, k + 1, &space, &mut tc).unwrap();
        }
        assert_eq!(t.remove(250, &mut tc), Some(251));
        assert_eq!(t.get(250, &mut tc), None);
        assert_eq!(t.remove(250, &mut tc), None);
        assert_eq!(t.len(), 499);
        // Range skips the hole.
        let r = t.range(249, 251, &mut tc);
        assert_eq!(r, vec![(249, 250), (251, 252)]);
    }

    #[test]
    fn descent_emits_dependent_loads() {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        let space = AddressSpace::new();
        let mut tree = BTree::new(&space);
        let mut tc = TraceCtx::null(er);
        for k in 0..5000u64 {
            tree.insert(k, k, &space, &mut tc).unwrap();
        }
        // Record a single lookup and inspect the trace.
        let mut rec = TraceCtx::recording(er);
        tree.get(2500, &mut rec);
        let trace = rec.finish();
        let deps = trace
            .iter()
            .filter(|e| matches!(e, dbcmp_trace::Event::Load { dep: true, .. }))
            .count();
        assert!(
            deps >= tree.height(),
            "one dependent load per level, got {deps}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tree behaves exactly like a BTreeMap under arbitrary
        /// insert/remove/lookup interleavings.
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec((0u8..3, 0u64..512), 1..400)) {
            let (mut t, space, mut tc) = setup();
            let mut model = std::collections::BTreeMap::new();
            for (op, key) in ops {
                match op {
                    0 => {
                        let r = t.insert(key, key + 7, &space, &mut tc);
                        let m = model.insert(key, key + 7);
                        prop_assert_eq!(r.is_err(), m.is_some());
                        if r.is_err() {
                            // engine rejects duplicates; restore the model
                            model.insert(key, m.unwrap());
                        }
                    }
                    1 => {
                        prop_assert_eq!(t.remove(key, &mut tc), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(t.get(key, &mut tc), model.get(&key).copied());
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
            // Full range agrees.
            let all = t.range(0, u64::MAX, &mut tc);
            let expect: Vec<(u64, u64)> = model.into_iter().collect();
            prop_assert_eq!(all, expect);
        }
    }
}
