//! Engine error type.

use std::fmt;

/// Errors surfaced by the storage engine and executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A lock could not be granted because a live transaction holds a
    /// conflicting mode — the requester should abort and retry (no-wait
    /// discipline; resolution is left to the caller).
    LockConflict {
        /// Lock key that conflicted.
        key: u64,
    },
    /// The requester was enqueued behind conflicting holders
    /// ([`LockPolicy::Queue`](crate::db::LockPolicy)): it must yield to the
    /// scheduler and retry the same operation once woken. Not an abort.
    LockWait {
        /// Lock key being waited on.
        key: u64,
    },
    /// The requester was chosen as the deadlock victim (youngest
    /// transaction on the waits-for cycle): it must abort; the survivors'
    /// waits then resolve.
    Deadlock {
        /// Lock key whose wait closed the cycle.
        key: u64,
    },
    /// The referenced table/index/row does not exist.
    NotFound(String),
    /// A page had no room and the tuple cannot move (updates that grow
    /// beyond page capacity).
    PageFull,
    /// A unique index rejected a duplicate key.
    DuplicateKey(u64),
    /// Schema/row mismatch (wrong arity or column type).
    TypeMismatch {
        /// Expected type or shape.
        expected: &'static str,
        /// What was supplied.
        got: &'static str,
    },
    /// Operation attempted on a finished transaction.
    TxnClosed,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::LockConflict { key } => write!(f, "lock conflict on key {key:#x}"),
            EngineError::LockWait { key } => write!(f, "lock wait on key {key:#x}"),
            EngineError::Deadlock { key } => {
                write!(f, "deadlock victim while waiting on key {key:#x}")
            }
            EngineError::NotFound(what) => write!(f, "not found: {what}"),
            EngineError::PageFull => write!(f, "page full"),
            EngineError::DuplicateKey(k) => write!(f, "duplicate key {k:#x}"),
            EngineError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            EngineError::TxnClosed => write!(f, "transaction already finished"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::LockConflict { key: 0xAB }
            .to_string()
            .contains("0xab"));
        assert!(EngineError::NotFound("t".into()).to_string().contains('t'));
        assert_eq!(EngineError::PageFull.to_string(), "page full");
        assert!(EngineError::LockWait { key: 0xCD }
            .to_string()
            .contains("0xcd"));
        assert!(EngineError::Deadlock { key: 0xEF }
            .to_string()
            .contains("victim"));
    }
}
