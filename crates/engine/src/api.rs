//! The transactional engine surface as a trait.
//!
//! Workload drivers (TPC-C transactions in `dbcmp-workloads`) are generic
//! over [`EngineOps`] so the *same* transaction code runs in two capture
//! regimes:
//!
//! * directly against [`Database`] — the sequential one-client-at-a-time
//!   capture, where every call completes immediately; and
//! * against a scheduler-mediated handle (workloads' `ClientDb`) that
//!   serializes many client threads onto one shared [`Database`] in
//!   deterministic round-robin slices, parking a client whenever the lock
//!   manager returns [`EngineError::LockWait`](crate::EngineError::LockWait)
//!   and retrying the operation once the lock is granted.
//!
//! Methods that acquire row locks (`read`, `update`, `delete`) must be
//! effect-free before the lock is held: a handle may re-invoke them after a
//! wait, so any work preceding the lock acquisition would be duplicated.

use crate::catalog::{IndexId, TableId};
use crate::db::Database;
use crate::error::Result;
use crate::heap::Rid;
use crate::lockmgr::LockMode;
use crate::tctx::TraceCtx;
use crate::txn::Txn;
use crate::types::{Row, Value};

/// The engine operations a transaction driver needs. See module docs.
pub trait EngineOps {
    /// Per-statement session/dispatch overhead.
    fn statement_overhead(&mut self, tc: &mut TraceCtx);
    /// Open a transaction.
    fn begin(&mut self, tc: &mut TraceCtx) -> Txn;
    /// Declare the transaction's derived read/write set before its first
    /// data access. A no-op on every backend except
    /// [`DeterministicOrdered`](crate::cc::DeterministicOrdered), which
    /// parks the caller until the whole set is granted in declare order
    /// (scheduler handles retry the call after a wake, like any other
    /// lock-waiting operation).
    fn declare(&mut self, txn: &mut Txn, keys: &[(u64, LockMode)], tc: &mut TraceCtx)
        -> Result<()>;
    /// Commit: WAL force + release locks.
    fn commit(&mut self, txn: Txn, tc: &mut TraceCtx) -> Result<()>;
    /// Roll back: undo in reverse + release locks.
    fn abort(&mut self, txn: Txn, tc: &mut TraceCtx);
    /// Insert a row (X-lock, WAL, indexes, undo).
    fn insert(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<Rid>;
    /// Read a row under an S (or X, `for_update`) lock.
    fn read(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        for_update: bool,
        tc: &mut TraceCtx,
    ) -> Result<Row>;
    /// Update a row in place (X lock, before-image undo, WAL).
    fn update(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<()>;
    /// Delete a row (X lock, image + index-key undo, WAL).
    fn delete(&mut self, txn: &mut Txn, table: TableId, rid: Rid, tc: &mut TraceCtx) -> Result<()>;
    /// Point lookup through an index (no row lock — index reads are
    /// latch-only, as in the era's engines).
    fn index_get(&mut self, index: IndexId, key: u64, tc: &mut TraceCtx) -> Option<Rid>;
    /// Inclusive range through an index.
    fn index_range(
        &mut self,
        index: IndexId,
        lo: u64,
        hi: u64,
        tc: &mut TraceCtx,
    ) -> Vec<(u64, Rid)>;
}

impl EngineOps for Database {
    fn statement_overhead(&mut self, tc: &mut TraceCtx) {
        Database::statement_overhead(self, tc);
    }

    fn begin(&mut self, tc: &mut TraceCtx) -> Txn {
        Database::begin(self, tc)
    }

    fn declare(
        &mut self,
        txn: &mut Txn,
        keys: &[(u64, LockMode)],
        tc: &mut TraceCtx,
    ) -> Result<()> {
        Database::declare(self, txn, keys, tc)
    }

    fn commit(&mut self, txn: Txn, tc: &mut TraceCtx) -> Result<()> {
        Database::commit(self, txn, tc)
    }

    fn abort(&mut self, txn: Txn, tc: &mut TraceCtx) {
        Database::abort(self, txn, tc);
    }

    fn insert(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<Rid> {
        Database::insert(self, txn, table, row, tc)
    }

    fn read(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        for_update: bool,
        tc: &mut TraceCtx,
    ) -> Result<Row> {
        Database::read(self, txn, table, rid, for_update, tc)
    }

    fn update(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<()> {
        Database::update(self, txn, table, rid, row, tc)
    }

    fn delete(&mut self, txn: &mut Txn, table: TableId, rid: Rid, tc: &mut TraceCtx) -> Result<()> {
        Database::delete(self, txn, table, rid, tc)
    }

    fn index_get(&mut self, index: IndexId, key: u64, tc: &mut TraceCtx) -> Option<Rid> {
        Database::index_get(self, index, key, tc)
    }

    fn index_range(
        &mut self,
        index: IndexId,
        lo: u64,
        hi: u64,
        tc: &mut TraceCtx,
    ) -> Vec<(u64, Rid)> {
        Database::index_range(self, index, lo, hi, tc)
    }
}
