//! Slotted pages: the classic row-store page layout.
//!
//! ```text
//! +--------------+----------------------------+------------------+
//! | header (16B) | tuples grow ->    <- free  | slot array grows |
//! +--------------+----------------------------+------------------+
//! ```
//!
//! Each slot is a 4-byte (offset, len) pair at the page tail. Deleting a
//! tuple zeroes its slot length; `compact` reclaims the holes. Every page
//! carries a simulated base address so accesses can be traced.

use crate::error::{EngineError, Result};
use crate::tctx::TraceCtx;

/// Page size, matching the paper-era 8 KB default.
pub const PAGE_SIZE: usize = 8192;
const HEADER: usize = 16;
const SLOT_BYTES: usize = 4;

/// Slot index within a page.
pub type SlotId = u16;

/// One slotted page plus its simulated address.
#[derive(Debug, Clone)]
pub struct SlottedPage {
    data: Vec<u8>,
    nslots: u16,
    /// First free byte after the last tuple.
    free_ptr: u16,
    /// Simulated base address of this page.
    pub addr: u64,
}

impl SlottedPage {
    /// An empty page at the given simulated address.
    pub fn new(addr: u64) -> Self {
        SlottedPage {
            data: vec![0; PAGE_SIZE],
            nslots: 0,
            free_ptr: HEADER as u16,
            addr,
        }
    }

    fn slot_pos(&self, slot: SlotId) -> usize {
        PAGE_SIZE - (slot as usize + 1) * SLOT_BYTES
    }

    fn slot(&self, slot: SlotId) -> (u16, u16) {
        let p = self.slot_pos(slot);
        let off = u16::from_le_bytes(self.data[p..p + 2].try_into().unwrap()); // lint:allow(panic): 2-byte slice into [u8; 2] is infallible
        let len = u16::from_le_bytes(self.data[p + 2..p + 4].try_into().unwrap()); // lint:allow(panic): 2-byte slice into [u8; 2] is infallible
        (off, len)
    }

    fn set_slot(&mut self, slot: SlotId, off: u16, len: u16) {
        let p = self.slot_pos(slot);
        self.data[p..p + 2].copy_from_slice(&off.to_le_bytes());
        self.data[p + 2..p + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Free space available for one more tuple of `len` bytes.
    pub fn fits(&self, len: usize) -> bool {
        let slot_top = PAGE_SIZE - (self.nslots as usize + 1) * SLOT_BYTES;
        self.free_ptr as usize + len <= slot_top
    }

    /// Insert a tuple; returns its slot. The traced accesses are the slot
    /// entry (near the page tail) and the tuple bytes.
    pub fn insert(&mut self, bytes: &[u8], tc: &mut TraceCtx) -> Result<SlotId> {
        if !self.fits(bytes.len()) {
            return Err(EngineError::PageFull);
        }
        let slot = self.nslots;
        let off = self.free_ptr;
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        self.free_ptr += bytes.len() as u16;
        self.nslots += 1;
        self.set_slot(slot, off, bytes.len() as u16);
        tc.store(self.addr + self.slot_pos(slot) as u64, SLOT_BYTES as u32);
        tc.store(self.addr + off as u64, bytes.len() as u32);
        Ok(slot)
    }

    /// Read a tuple image. `None` for deleted/invalid slots.
    pub fn get<'a>(&'a self, slot: SlotId, tc: &mut TraceCtx) -> Option<&'a [u8]> {
        if slot >= self.nslots {
            return None;
        }
        tc.load(self.addr + self.slot_pos(slot) as u64, SLOT_BYTES as u32);
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None;
        }
        tc.load(self.addr + off as u64, len as u32);
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Overwrite a tuple in place. The new image must not be longer than
    /// the old (fixed-width rows always qualify).
    pub fn update(&mut self, slot: SlotId, bytes: &[u8], tc: &mut TraceCtx) -> Result<()> {
        if slot >= self.nslots {
            return Err(EngineError::NotFound(format!("slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Err(EngineError::NotFound(format!("slot {slot} deleted")));
        }
        if bytes.len() > len as usize {
            return Err(EngineError::PageFull);
        }
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        if (bytes.len() as u16) < len {
            self.set_slot(slot, off, bytes.len() as u16);
        }
        tc.store(self.addr + off as u64, bytes.len() as u32);
        Ok(())
    }

    /// Delete a tuple (slot becomes a tombstone until `compact`).
    pub fn delete(&mut self, slot: SlotId, tc: &mut TraceCtx) -> Result<()> {
        if slot >= self.nslots {
            return Err(EngineError::NotFound(format!("slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Err(EngineError::NotFound(format!(
                "slot {slot} already deleted"
            )));
        }
        self.set_slot(slot, off, 0);
        tc.store(self.addr + self.slot_pos(slot) as u64, SLOT_BYTES as u32);
        Ok(())
    }

    /// Restore a tombstoned slot's image in place (delete rollback). The
    /// byte region of the original tuple is still reserved (compaction is
    /// never run mid-transaction), so the image fits by construction.
    pub fn restore(&mut self, slot: SlotId, bytes: &[u8], tc: &mut TraceCtx) -> Result<()> {
        if slot >= self.nslots {
            return Err(EngineError::NotFound(format!("slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if len != 0 {
            return Err(EngineError::NotFound(format!("slot {slot} not deleted")));
        }
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        self.set_slot(slot, off, bytes.len() as u16);
        tc.store(self.addr + self.slot_pos(slot) as u64, SLOT_BYTES as u32);
        tc.store(self.addr + off as u64, bytes.len() as u32);
        Ok(())
    }

    /// Number of slots ever allocated (including tombstones).
    pub fn nslots(&self) -> u16 {
        self.nslots
    }

    /// Live tuples.
    pub fn live(&self) -> usize {
        (0..self.nslots).filter(|&s| self.slot(s).1 != 0).count()
    }

    /// Reclaim holes left by deletions; slot ids are preserved.
    pub fn compact(&mut self) {
        let mut images: Vec<(SlotId, Vec<u8>)> = Vec::new();
        for s in 0..self.nslots {
            let (off, len) = self.slot(s);
            if len != 0 {
                images.push((s, self.data[off as usize..(off + len) as usize].to_vec()));
            }
        }
        let mut cur = HEADER as u16;
        for (s, img) in images {
            self.data[cur as usize..cur as usize + img.len()].copy_from_slice(&img);
            self.set_slot(s, cur, img.len() as u16);
            cur += img.len() as u16;
        }
        self.free_ptr = cur;
    }

    /// Bytes of free space.
    pub fn free_space(&self) -> usize {
        let slot_top = PAGE_SIZE - (self.nslots as usize) * SLOT_BYTES;
        slot_top.saturating_sub(self.free_ptr as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use dbcmp_trace::CodeRegions;

    fn tc() -> TraceCtx {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        TraceCtx::null(er)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut tcx = tc();
        let mut p = SlottedPage::new(0x10000);
        let s0 = p.insert(b"hello", &mut tcx).unwrap();
        let s1 = p.insert(b"world!", &mut tcx).unwrap();
        assert_eq!(p.get(s0, &mut tcx).unwrap(), b"hello");
        assert_eq!(p.get(s1, &mut tcx).unwrap(), b"world!");
        assert_eq!(p.live(), 2);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut tcx = tc();
        let mut p = SlottedPage::new(0);
        let s = p.insert(b"x", &mut tcx).unwrap();
        p.delete(s, &mut tcx).unwrap();
        assert!(p.get(s, &mut tcx).is_none());
        assert!(p.delete(s, &mut tcx).is_err());
        assert_eq!(p.live(), 0);
        assert_eq!(p.nslots(), 1);
    }

    #[test]
    fn update_in_place_and_shrink() {
        let mut tcx = tc();
        let mut p = SlottedPage::new(0);
        let s = p.insert(b"abcdef", &mut tcx).unwrap();
        p.update(s, b"ABCDEF", &mut tcx).unwrap();
        assert_eq!(p.get(s, &mut tcx).unwrap(), b"ABCDEF");
        p.update(s, b"xy", &mut tcx).unwrap();
        assert_eq!(p.get(s, &mut tcx).unwrap(), b"xy");
        assert!(p.update(s, b"toolongnow", &mut tcx).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut tcx = tc();
        let mut p = SlottedPage::new(0);
        let tuple = vec![7u8; 100];
        let mut n = 0;
        while p.fits(tuple.len()) {
            p.insert(&tuple, &mut tcx).unwrap();
            n += 1;
        }
        // 8192 - 16 header; 104 bytes per tuple+slot → ~78 tuples.
        assert!((70..=80).contains(&n), "n={n}");
        assert!(matches!(
            p.insert(&tuple, &mut tcx),
            Err(EngineError::PageFull)
        ));
    }

    #[test]
    fn compact_reclaims_space() {
        let mut tcx = tc();
        let mut p = SlottedPage::new(0);
        let a = p.insert(&[1u8; 1000], &mut tcx).unwrap();
        let b = p.insert(&[2u8; 1000], &mut tcx).unwrap();
        let c = p.insert(&[3u8; 1000], &mut tcx).unwrap();
        let before = p.free_space();
        p.delete(b, &mut tcx).unwrap();
        p.compact();
        assert!(p.free_space() >= before + 1000);
        // Survivors intact, ids stable.
        assert_eq!(p.get(a, &mut tcx).unwrap(), &[1u8; 1000][..]);
        assert_eq!(p.get(c, &mut tcx).unwrap(), &[3u8; 1000][..]);
        assert!(p.get(b, &mut tcx).is_none());
    }
}
