//! Hash join (inner and left-outer).
//!
//! Build side is materialized into a hash table allocated in the simulated
//! address space; probes emit a dependent load per bucket (hash-chain
//! walk). Outer joins preserve unmatched probe rows padded with NULLs.

// Hash collections here are audited per-site with lint:allow(hash-order)
// annotations (rule D1); the file-level clippy opt-out avoids repeating
// an attribute at every justified site.
#![allow(clippy::disallowed_types)]

// lint:allow(hash-order): the build table is probed by key only; output follows probe-stream order
use std::collections::HashMap;

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::{Row, Value};

/// Join kind. For `LeftOuter`, the *probe* side is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit matching pairs only.
    Inner,
    /// Additionally keep unmatched probe rows, padded with NULLs.
    LeftOuter,
}

/// Hash join: `build` side loaded into a table keyed by `build_key`;
/// `probe` side streamed, matching on `probe_key`. Output = probe row ++
/// build row.
pub struct HashJoin {
    build: BoxExec,
    probe: BoxExec,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    // lint:allow(hash-order): probed per key; per-key match Vecs preserve build-scan order
    table: HashMap<Value, Vec<Row>>,
    /// Simulated base address of the hash table.
    table_addr: u64,
    n_buckets: u64,
    build_width: usize,
    /// Matches pending emission for the current probe row.
    pending: Vec<Row>,
    /// Charge chain-walk loads past the bucket header on duplicate-key
    /// buckets (see [`HashJoin::with_chain_walks`]). Off by default.
    chain_walks: bool,
}

impl HashJoin {
    /// Join `build` (keyed on `build_key`) against streamed `probe`
    /// rows (keyed on `probe_key`).
    pub fn new(
        build: BoxExec,
        build_key: usize,
        probe: BoxExec,
        probe_key: usize,
        kind: JoinKind,
    ) -> Self {
        HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            kind,
            // lint:allow(hash-order): placeholder; filled (and justified) in open()
            table: HashMap::new(),
            table_addr: 0,
            n_buckets: 0,
            build_width: 0,
            pending: Vec::new(),
            chain_walks: false,
        }
    }

    /// Opt into chain-walk accounting on duplicate-key buckets: the
    /// j-th match beyond the first costs a *dependent* load on the
    /// overflow entry it chains to, instead of re-touching the bucket
    /// header. Off by default — the historical (PR 5) model charged the
    /// bucket array only, and every golden anchor pins that default;
    /// this flag closes the honesty caveat without moving them.
    pub fn with_chain_walks(mut self, on: bool) -> Self {
        self.chain_walks = on;
        self
    }

    fn bucket_addr(&self, key: &Value) -> u64 {
        bucket_addr(self.table_addr, self.n_buckets, key)
    }
}

/// Map a join key to its simulated bucket line within a table of
/// `n_buckets` 64-byte buckets based at `base`. The **single source of
/// truth** for hash-table address geometry: the staged engine's
/// `JoinTable` uses the same function, so executor and staged captures
/// of the same join touch the same simulated address pattern.
pub fn bucket_addr(base: u64, n_buckets: u64, key: &Value) -> u64 {
    let h = match key {
        Value::Int(v) | Value::Decimal(v) => *v as u64,
        Value::Date(d) => *d as u64,
        Value::Str(s) => s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        }),
        Value::Null => 0,
    };
    base + (h.wrapping_mul(0x9E3779B97F4A7C15) % n_buckets.max(1)) * 64
}

/// Charge the load for the `j`-th match (0-based) in a bucket at `addr`.
/// The first match reads the bucket header. With `chain_walks` off
/// (the historical default every golden anchor pins), every further
/// match re-reads the header too; with it on, the j-th duplicate walks
/// to its overflow entry — a *dependent* 16-byte load at one of the
/// three chain slots behind the header (entries cycle through the
/// 64-byte bucket line's remaining slots, the way a bucket-chained
/// table packs overflow cells before spilling).
pub(crate) fn match_load(tc: &mut TraceCtx, addr: u64, j: usize, chain_walks: bool) {
    if chain_walks && j > 0 {
        tc.load_dep(addr + 16 * (1 + ((j - 1) as u64 % 3)), 16);
    } else {
        tc.load(addr, 16);
    }
}

impl Executor for HashJoin {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.build.open(db, tc)?;
        let mut rows = Vec::new();
        while let Some(row) = self.build.next(db, tc)? {
            rows.push(row);
        }
        self.build.close();

        // Size the simulated table to the build cardinality.
        self.n_buckets = (rows.len() as u64).next_power_of_two().max(64);
        self.table_addr = tc.scratch_alloc(&db.space, self.n_buckets * 64);
        // lint:allow(hash-order): build fill in deterministic scan order; the map is only ever probed
        self.table = HashMap::with_capacity(rows.len());
        for row in rows {
            tc.charge(tc.r.exec_hashjoin, instr::HJ_BUILD_ROW);
            self.build_width = row.len();
            let key = row[self.build_key].clone();
            // SQL semantics: NULL keys never participate in an equi-join.
            if key.is_null() {
                continue;
            }
            let addr = self.bucket_addr(&key);
            tc.store(addr, 16);
            self.table.entry(key).or_default().push(row);
        }
        self.probe.open(db, tc)
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        loop {
            if let Some(out) = self.pending.pop() {
                return Ok(Some(out));
            }
            let Some(probe_row) = self.probe.next(db, tc)? else {
                return Ok(None);
            };
            tc.charge(tc.r.exec_hashjoin, instr::HJ_PROBE_ROW);
            let key = &probe_row[self.probe_key];
            if key.is_null() {
                // NULL probe keys match nothing (but outer joins keep the
                // probe row).
                if self.kind == JoinKind::LeftOuter {
                    let mut out = probe_row.clone();
                    out.extend(std::iter::repeat_n(Value::Null, self.build_width));
                    return Ok(Some(out));
                }
                continue;
            }
            // Bucket header: dependent load (chain walk).
            let addr = self.bucket_addr(key);
            tc.load_dep(addr, 16);
            match self.table.get(key) {
                Some(matches) => {
                    for (j, m) in matches.iter().enumerate() {
                        match_load(tc, addr, j, self.chain_walks);
                        let mut out = probe_row.clone();
                        out.extend(m.iter().cloned());
                        self.pending.push(out);
                    }
                }
                None => {
                    if self.kind == JoinKind::LeftOuter {
                        let mut out = probe_row.clone();
                        out.extend(std::iter::repeat_n(Value::Null, self.build_width));
                        return Ok(Some(out));
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.probe.close();
        self.table.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::{CmpOp, Pred};
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, Filter, SeqScan};

    #[test]
    fn inner_join_on_group() {
        let (db, t) = sample_db(50);
        let mut tc = db.null_ctx();
        // Join table with itself on grp: build side = rows with id < 7
        // (one per group), probe = all rows.
        let build = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 0,
                op: CmpOp::Lt,
                val: Value::Int(7),
            },
        ));
        let probe = Box::new(SeqScan::new(t));
        let mut join = HashJoin::new(build, 1, probe, 1, JoinKind::Inner);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        // Every probe row matches exactly one build row (grp 0..6 unique in
        // build).
        assert_eq!(rows.len(), 50);
        // Output width: probe (4) + build (4).
        assert_eq!(rows[0].len(), 8);
        for r in &rows {
            assert_eq!(r[1], r[5], "join keys must agree");
        }
    }

    #[test]
    fn left_outer_pads_nulls() {
        let (db, t) = sample_db(20);
        let mut tc = db.null_ctx();
        // Build side empty (id < 0): all probe rows unmatched.
        let build = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 0,
                op: CmpOp::Lt,
                val: Value::Int(0),
            },
        ));
        let probe = Box::new(SeqScan::new(t));
        let mut join = HashJoin::new(build, 1, probe, 1, JoinKind::LeftOuter);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 20);
        // Build width is unknown (0 rows) → no padding columns; probe row
        // must still come through intact.
        assert_eq!(rows[0].len(), 4);

        // Now a partial build: grp == 3 matched, others padded.
        let build = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                val: Value::Int(3),
            },
        ));
        let probe = Box::new(SeqScan::new(t));
        let mut join = HashJoin::new(build, 1, probe, 1, JoinKind::LeftOuter);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        let matched: Vec<_> = rows
            .iter()
            .filter(|r| r.len() == 8 && !r[4].is_null())
            .collect();
        let unmatched: Vec<_> = rows.iter().filter(|r| r[1] != Value::Int(3)).collect();
        assert!(!matched.is_empty());
        assert!(unmatched.iter().all(|r| r[4..].iter().all(Value::is_null)));
    }

    #[test]
    fn duplicate_build_keys_emit_every_match() {
        let (db, t) = sample_db(35);
        let mut tc = db.null_ctx();
        // Build: all 35 rows keyed on grp (grp = id % 7 → 5 rows per
        // group). Probe: one row per group (id < 7).
        let build = Box::new(SeqScan::new(t));
        let probe = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 0,
                op: CmpOp::Lt,
                val: Value::Int(7),
            },
        ));
        let mut join = HashJoin::new(build, 1, probe, 1, JoinKind::Inner);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        // 7 probe rows x 5 duplicate build matches each.
        assert_eq!(rows.len(), 35);
        for r in &rows {
            assert_eq!(r[1], r[5], "every emitted pair agrees on the key");
        }
    }

    /// Satellite: the chain-walk flag defaults off, and off is
    /// byte-identical to the historical bucket-array-only accounting —
    /// the golden anchors (fig7, fig_joins, fig_deploy, BENCH_trace)
    /// all replay captures of this default.
    #[test]
    fn chain_walk_flag_defaults_off_and_pins_the_trace() {
        use crate::costs::EngineRegions;
        use dbcmp_trace::{CodeRegions, Event};

        // Build: all 35 rows keyed on grp (5 duplicates per group).
        // Probe: one row per group (id < 7) → 7 probes x 5 matches.
        // A fresh database per run keeps the simulated allocator state
        // (and so the table's scratch address) identical across runs.
        let run = |chain: Option<bool>| {
            let (db, t) = sample_db(35);
            let mut r = CodeRegions::new();
            let er = EngineRegions::register(&mut r);
            let mut tc = TraceCtx::recording(er);
            let build = Box::new(SeqScan::new(t));
            let probe = Box::new(Filter::new(
                Box::new(SeqScan::new(t)),
                Pred::Cmp {
                    col: 0,
                    op: CmpOp::Lt,
                    val: Value::Int(7),
                },
            ));
            let mut join = HashJoin::new(build, 1, probe, 1, JoinKind::Inner);
            if let Some(on) = chain {
                join = join.with_chain_walks(on);
            }
            let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
            (rows, tc.finish())
        };

        let (rows_default, tr_default) = run(None);
        let (rows_off, tr_off) = run(Some(false));
        let (rows_on, tr_on) = run(Some(true));

        // Default ≡ explicit false, byte for byte.
        assert_eq!(tr_default.packed_events(), tr_off.packed_events());

        // The flag changes accounting only, never results.
        assert_eq!(rows_default, rows_off);
        assert_eq!(rows_default, rows_on);

        // Flag on: each duplicate match past the first converts its
        // header re-read into a dependent chain-walk load — same event
        // count, exactly Σ(matches − 1) = 7 x (5 − 1) extra dep loads.
        let dep_loads = |tr: &dbcmp_trace::ThreadTrace| {
            tr.iter()
                .filter(|e| matches!(e, Event::Load { dep: true, .. }))
                .count()
        };
        assert_eq!(tr_on.len(), tr_default.len());
        assert_eq!(tr_on.loads(), tr_default.loads());
        assert_eq!(dep_loads(&tr_on), dep_loads(&tr_default) + 7 * 4);
        assert_ne!(tr_on.packed_events(), tr_default.packed_events());
    }

    #[test]
    fn null_keys_match_nothing() {
        use crate::exec::{Project, Scalar};
        let (db, t) = sample_db(12);
        let mut tc = db.null_ctx();
        // Probe rows whose key column is NULL: inner join drops them all.
        let null_probe = |t| {
            Box::new(Project::new(
                Box::new(SeqScan::new(t)),
                vec![Scalar::Null, Scalar::Col(1)],
            ))
        };
        let build = Box::new(SeqScan::new(t));
        let mut join = HashJoin::new(build, 1, null_probe(t), 0, JoinKind::Inner);
        assert!(run_to_vec(&mut join, &db, &mut tc).unwrap().is_empty());

        // Left-outer keeps them, padded — and NULL build keys are not
        // admitted to the table, so nothing ever matches NULL.
        let build = Box::new(SeqScan::new(t));
        let mut join = HashJoin::new(build, 1, null_probe(t), 0, JoinKind::LeftOuter);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r[2..].iter().all(Value::is_null)));
    }
}
