//! Nested-loop join (inner, small relations).

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::expr::Pred;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Inner nested-loop join: materialized inner side, arbitrary join
/// predicate over the concatenated row (outer ++ inner).
pub struct NestedLoop {
    outer: BoxExec,
    inner: BoxExec,
    pred: Pred,
    inner_rows: Vec<Row>,
    cur_outer: Option<Row>,
    inner_pos: usize,
}

impl NestedLoop {
    /// Join `outer` against materialized `inner` under `pred` (evaluated
    /// over the concatenated row).
    pub fn new(outer: BoxExec, inner: BoxExec, pred: Pred) -> Self {
        NestedLoop {
            outer,
            inner,
            pred,
            inner_rows: Vec::new(),
            cur_outer: None,
            inner_pos: 0,
        }
    }
}

impl Executor for NestedLoop {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.inner.open(db, tc)?;
        self.inner_rows.clear();
        while let Some(r) = self.inner.next(db, tc)? {
            self.inner_rows.push(r);
        }
        self.inner.close();
        self.outer.open(db, tc)?;
        self.cur_outer = None;
        self.inner_pos = 0;
        Ok(())
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        loop {
            if self.cur_outer.is_none() {
                self.cur_outer = self.outer.next(db, tc)?;
                self.inner_pos = 0;
                if self.cur_outer.is_none() {
                    return Ok(None);
                }
            }
            // lint:allow(panic): the branch above either filled cur_outer or returned
            let outer = self.cur_outer.as_ref().expect("set above");
            while self.inner_pos < self.inner_rows.len() {
                tc.charge(tc.r.exec_nlj, instr::PREDICATE);
                let inner = &self.inner_rows[self.inner_pos];
                self.inner_pos += 1;
                let mut combined = outer.clone();
                combined.extend(inner.iter().cloned());
                if self.pred.eval(&combined, tc) {
                    return Ok(Some(combined));
                }
            }
            self.cur_outer = None;
        }
    }

    fn close(&mut self) {
        self.outer.close();
        self.inner_rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::CmpOp;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, Filter, SeqScan};
    use crate::types::Value;

    #[test]
    fn joins_matching_pairs() {
        let (db, t) = sample_db(10);
        let mut tc = db.null_ctx();
        // outer: all rows; inner: rows with id < 3; predicate: outer.grp == inner.id
        let outer = Box::new(SeqScan::new(t));
        let inner = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 0,
                op: CmpOp::Lt,
                val: Value::Int(3),
            },
        ));
        // combined row: outer 0..4, inner 4..8. grp is col 1, inner id col 4.
        let pred = Pred::And(vec![]);
        let mut nl = NestedLoop::new(outer, inner, pred);
        let rows = run_to_vec(&mut nl, &db, &mut tc).unwrap();
        // Cross product with empty AND (= true): 10 x 3.
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0].len(), 8);
    }
}
