//! Predicates, scalar expressions, and aggregate specifications.

use crate::costs::instr;
use crate::tctx::TraceCtx;
use crate::types::Value;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the SQL comparison operators
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Row predicate.
#[derive(Debug, Clone)]
pub enum Pred {
    /// `col <op> const`
    Cmp {
        /// Column index into the input row.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        val: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive)
    Between {
        /// Column index into the input row.
        col: usize,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `col [NOT] LIKE '%needle%'`
    StrContains {
        /// Column index into the input row.
        col: usize,
        /// Substring searched for.
        needle: String,
        /// `true` for `NOT LIKE`.
        negate: bool,
    },
    /// `col [NOT] LIKE 'prefix%'`
    StrPrefix {
        /// Column index into the input row.
        col: usize,
        /// Prefix tested for.
        prefix: String,
        /// `true` for `NOT LIKE`.
        negate: bool,
    },
    /// `col IN (...)`
    In {
        /// Column index into the input row.
        col: usize,
        /// Membership set.
        set: Vec<Value>,
    },
    /// Conjunction (empty = `TRUE`).
    And(Vec<Pred>),
    /// Disjunction (empty = `FALSE`).
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Constant `TRUE` (unfiltered scans).
    True,
}

impl Pred {
    /// Evaluate against a row, charging predicate instructions.
    pub fn eval(&self, row: &[Value], tc: &mut TraceCtx) -> bool {
        tc.charge(tc.r.exec_filter, instr::PREDICATE);
        self.eval_inner(row)
    }

    fn eval_inner(&self, row: &[Value]) -> bool {
        match self {
            Pred::Cmp { col, op, val } => match row[*col].partial_cmp(val) {
                Some(ord) => op.test(ord),
                None => false,
            },
            Pred::Between { col, lo, hi } => {
                let v = &row[*col];
                v >= lo && v <= hi
            }
            Pred::StrContains {
                col,
                needle,
                negate,
            } => {
                let hit = row[*col]
                    .as_str()
                    .is_some_and(|s| s.contains(needle.as_str()));
                hit != *negate
            }
            Pred::StrPrefix {
                col,
                prefix,
                negate,
            } => {
                let hit = row[*col]
                    .as_str()
                    .is_some_and(|s| s.starts_with(prefix.as_str()));
                hit != *negate
            }
            Pred::In { col, set } => set.contains(&row[*col]),
            Pred::And(ps) => ps.iter().all(|p| p.eval_inner(row)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval_inner(row)),
            Pred::Not(p) => !p.eval_inner(row),
            Pred::True => true,
        }
    }
}

/// Scalar expression over a row. Decimal values are integer hundredths;
/// multiplying two decimals rescales by /100 to stay in hundredths.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// Column reference (index into the operator's input row).
    Col(usize),
    /// Integer literal.
    ConstInt(i64),
    /// Decimal literal (integer hundredths).
    ConstDec(i64),
    /// The SQL NULL literal.
    Null,
    /// Addition.
    Add(Box<Scalar>, Box<Scalar>),
    /// Subtraction.
    Sub(Box<Scalar>, Box<Scalar>),
    /// Decimal-aware multiply.
    MulDec(Box<Scalar>, Box<Scalar>),
}

impl Scalar {
    /// Shorthand for [`Scalar::Col`].
    pub fn col(i: usize) -> Self {
        Scalar::Col(i)
    }

    /// Evaluate to a raw i64 (decimals in hundredths).
    pub fn eval_i64(&self, row: &[Value]) -> i64 {
        match self {
            Scalar::Col(i) => row[*i].as_i64().unwrap_or(0),
            Scalar::ConstInt(v) | Scalar::ConstDec(v) => *v,
            Scalar::Null => 0,
            Scalar::Add(a, b) => a.eval_i64(row) + b.eval_i64(row),
            Scalar::Sub(a, b) => a.eval_i64(row) - b.eval_i64(row),
            Scalar::MulDec(a, b) => a.eval_i64(row) * b.eval_i64(row) / 100,
        }
    }

    /// Evaluate to a Value. Column references preserve their type; all
    /// computed results are decimals.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Scalar::Col(i) => row[*i].clone(),
            Scalar::ConstInt(v) => Value::Int(*v),
            Scalar::Null => Value::Null,
            _ => Value::Decimal(self.eval_i64(row)),
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// Count rows where the input expression is non-NULL (SQL
    /// `COUNT(col)` — needed after outer joins).
    CountNonNull,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)` (integer division of sum by count).
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
}

/// One aggregate column specification: function over a scalar input.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function applied.
    pub func: AggFunc,
    /// Input expression (ignored for `Count`).
    pub input: Scalar,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: Scalar::ConstInt(1),
        }
    }

    /// `SUM(input)`.
    pub fn sum(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::Sum,
            input,
        }
    }

    /// `AVG(input)`.
    pub fn avg(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::Avg,
            input,
        }
    }

    /// `MIN(input)`.
    pub fn min(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::Min,
            input,
        }
    }

    /// `MAX(input)`.
    pub fn max(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::Max,
            input,
        }
    }

    /// `COUNT(DISTINCT input)`.
    pub fn count_distinct(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::CountDistinct,
            input,
        }
    }

    /// `COUNT(input)` — non-NULL rows only.
    pub fn count_non_null(input: Scalar) -> Self {
        AggSpec {
            func: AggFunc::CountNonNull,
            input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::EngineRegions;
    use dbcmp_trace::CodeRegions;

    fn tc() -> TraceCtx {
        let mut r = CodeRegions::new();
        let er = EngineRegions::register(&mut r);
        TraceCtx::null(er)
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(5),
            Value::Decimal(250),
            Value::Str("special packaged box".into()),
            Value::Date(100),
        ]
    }

    #[test]
    fn comparisons() {
        let mut t = tc();
        let r = row();
        assert!(Pred::Cmp {
            col: 0,
            op: CmpOp::Eq,
            val: Value::Int(5)
        }
        .eval(&r, &mut t));
        assert!(Pred::Cmp {
            col: 0,
            op: CmpOp::Lt,
            val: Value::Int(6)
        }
        .eval(&r, &mut t));
        assert!(!Pred::Cmp {
            col: 0,
            op: CmpOp::Gt,
            val: Value::Int(6)
        }
        .eval(&r, &mut t));
        assert!(Pred::Cmp {
            col: 3,
            op: CmpOp::Ge,
            val: Value::Date(100)
        }
        .eval(&r, &mut t));
    }

    #[test]
    fn between_inclusive() {
        let mut t = tc();
        let r = row();
        let p = Pred::Between {
            col: 1,
            lo: Value::Decimal(250),
            hi: Value::Decimal(300),
        };
        assert!(p.eval(&r, &mut t));
        let p2 = Pred::Between {
            col: 1,
            lo: Value::Decimal(251),
            hi: Value::Decimal(300),
        };
        assert!(!p2.eval(&r, &mut t));
    }

    #[test]
    fn string_predicates() {
        let mut t = tc();
        let r = row();
        assert!(Pred::StrContains {
            col: 2,
            needle: "packaged".into(),
            negate: false
        }
        .eval(&r, &mut t));
        assert!(Pred::StrContains {
            col: 2,
            needle: "missing".into(),
            negate: true
        }
        .eval(&r, &mut t));
        assert!(Pred::StrPrefix {
            col: 2,
            prefix: "special".into(),
            negate: false
        }
        .eval(&r, &mut t));
    }

    #[test]
    fn boolean_combinators() {
        let mut t = tc();
        let r = row();
        let yes = Pred::Cmp {
            col: 0,
            op: CmpOp::Eq,
            val: Value::Int(5),
        };
        let no = Pred::Cmp {
            col: 0,
            op: CmpOp::Eq,
            val: Value::Int(6),
        };
        assert!(Pred::And(vec![yes.clone(), Pred::True]).eval(&r, &mut t));
        assert!(!Pred::And(vec![yes.clone(), no.clone()]).eval(&r, &mut t));
        assert!(Pred::Or(vec![no.clone(), yes.clone()]).eval(&r, &mut t));
        assert!(Pred::Not(Box::new(no)).eval(&r, &mut t));
    }

    #[test]
    fn in_set() {
        let mut t = tc();
        let r = row();
        let p = Pred::In {
            col: 0,
            set: vec![Value::Int(3), Value::Int(5)],
        };
        assert!(p.eval(&r, &mut t));
    }

    #[test]
    fn scalar_decimal_math() {
        // price * (1 - discount): price 10.00, discount 0.05 -> 9.50
        let r = vec![Value::Decimal(10_00), Value::Decimal(5)];
        let e = Scalar::MulDec(
            Box::new(Scalar::col(0)),
            Box::new(Scalar::Sub(
                Box::new(Scalar::ConstDec(100)),
                Box::new(Scalar::col(1)),
            )),
        );
        assert_eq!(e.eval_i64(&r), 9_50);
        assert_eq!(e.eval(&r), Value::Decimal(9_50));
    }
}
