//! Sequential heap scan.

use crate::catalog::TableId;
use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::Executor;
use crate::heap::Rid;
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Full-table scan in physical order. Pages are pinned once each (the
/// buffer-pool charge), tuples decoded as visited.
#[derive(Debug)]
pub struct SeqScan {
    table: TableId,
    page: u32,
    slot: u16,
    pinned_page: Option<u32>,
    open: bool,
}

impl SeqScan {
    /// Scan every live row of `table` in physical order.
    pub fn new(table: TableId) -> Self {
        SeqScan {
            table,
            page: 0,
            slot: 0,
            pinned_page: None,
            open: false,
        }
    }
}

impl Executor for SeqScan {
    fn open(&mut self, _db: &Database, _tc: &mut TraceCtx) -> Result<()> {
        self.page = 0;
        self.slot = 0;
        self.pinned_page = None;
        self.open = true;
        Ok(())
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        debug_assert!(self.open, "next before open");
        let heap = db.table(self.table);
        loop {
            if (self.page as usize) >= heap.n_pages() {
                return Ok(None);
            }
            if self.pinned_page != Some(self.page) {
                heap.pin_page(self.page, tc);
                self.pinned_page = Some(self.page);
            }
            tc.charge(tc.r.exec_scan, instr::SCAN_STEP);
            let rid = Rid {
                page: self.page,
                slot: self.slot,
            };
            self.slot += 1;
            match heap.read_at(rid, tc) {
                Some(row) => return Ok(Some(row)),
                None => {
                    // Tombstone or end of page: advance page when the slot
                    // range is exhausted.
                    if rid.slot >= page_slots(db, self.table, self.page) {
                        self.page += 1;
                        self.slot = 0;
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.open = false;
    }
}

fn page_slots(db: &Database, table: TableId, page: u32) -> u16 {
    // The heap exposes per-page slot counts through its rid iterator; for
    // the scan we only need "is the slot range done", which read_at's None
    // at an out-of-range slot also signals. This helper keeps the advance
    // logic readable.
    let heap = db.table(table);
    heap.page_nslots(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_to_vec;
    use crate::exec::testutil::sample_db;
    use crate::types::Value;

    #[test]
    fn scans_all_rows() {
        let (db, t) = sample_db(500);
        let mut tc = db.null_ctx();
        let mut scan = SeqScan::new(t);
        let rows = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[499][0], Value::Int(499));
    }

    #[test]
    fn empty_table_yields_nothing() {
        let (db, _) = sample_db(0);
        // table 0 exists but has no rows
        let mut tc = db.null_ctx();
        let mut scan = SeqScan::new(0);
        let rows = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn rescannable_after_reopen() {
        let (db, t) = sample_db(50);
        let mut tc = db.null_ctx();
        let mut scan = SeqScan::new(t);
        let a = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        let b = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        assert_eq!(a, b);
    }
}
