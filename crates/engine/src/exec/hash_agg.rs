//! Hash aggregation (GROUP BY).
//!
//! Materializes group states at `open`, emits one row per group at `next`:
//! group columns followed by aggregate values. The group table lives in
//! the simulated address space; each input row costs an update (store) to
//! its group's line.

// Hash collections here are audited per-site with lint:allow(hash-order)
// annotations (rule D1); the file-level clippy opt-out avoids repeating
// an attribute at every justified site.
#![allow(clippy::disallowed_types)]

// lint:allow(hash-order): key->index lookup and len-only distinct sets; emission order is the insertion-ordered `groups` Vec
use std::collections::{HashMap, HashSet};

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::expr::{AggFunc, AggSpec};
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::{Row, Value};

#[derive(Debug, Clone)]
struct GroupState {
    count: i64,
    non_null: Vec<i64>,
    sums: Vec<i64>,
    mins: Vec<i64>,
    maxs: Vec<i64>,
    // lint:allow(hash-order): only `len()` is read (COUNT DISTINCT)
    distincts: Vec<HashSet<i64>>,
}

/// GROUP BY `group_cols` with aggregate columns `aggs`.
pub struct HashAggregate {
    child: BoxExec,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    groups: Vec<(Vec<Value>, GroupState)>,
    emit: usize,
    table_addr: u64,
}

impl HashAggregate {
    /// Group `child` by `group_cols`, computing `aggs` per group.
    pub fn new(child: BoxExec, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        HashAggregate {
            child,
            group_cols,
            aggs,
            groups: Vec::new(),
            emit: 0,
            table_addr: 0,
        }
    }

    fn fresh_state(&self) -> GroupState {
        GroupState {
            count: 0,
            non_null: vec![0; self.aggs.len()],
            sums: vec![0; self.aggs.len()],
            mins: vec![i64::MAX; self.aggs.len()],
            maxs: vec![i64::MIN; self.aggs.len()],
            // lint:allow(hash-order): len-only distinct counters, see GroupState
            distincts: vec![HashSet::new(); self.aggs.len()],
        }
    }
}

impl Executor for HashAggregate {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.child.open(db, tc)?;
        self.table_addr = tc.scratch_alloc(&db.space, 64 * 1024);
        // lint:allow(hash-order): get/insert only; rows are emitted from `groups`, which preserves first-seen key order
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, GroupState)> = Vec::new();

        while let Some(row) = self.child.next(db, tc)? {
            tc.charge(tc.r.exec_agg, instr::AGG_UPDATE);
            let key: Vec<Value> = self.group_cols.iter().map(|&c| row[c].clone()).collect();
            let gi = match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = groups.len();
                    index.insert(key.clone(), gi);
                    groups.push((key, self.fresh_state()));
                    gi
                }
            };
            // Group-state line: dependent load (hash probe) + store.
            let line = self.table_addr + (gi as u64 % 1024) * 64;
            tc.load_dep(line, 32);
            tc.store(line, 32);

            let (_, state) = &mut groups[gi];
            state.count += 1;
            for (ai, spec) in self.aggs.iter().enumerate() {
                let v = spec.input.eval_i64(&row);
                match spec.func {
                    AggFunc::Count => {}
                    AggFunc::CountNonNull => {
                        if !spec.input.eval(&row).is_null() {
                            state.non_null[ai] += 1;
                        }
                    }
                    AggFunc::Sum | AggFunc::Avg => state.sums[ai] += v,
                    AggFunc::Min => state.mins[ai] = state.mins[ai].min(v),
                    AggFunc::Max => state.maxs[ai] = state.maxs[ai].max(v),
                    AggFunc::CountDistinct => {
                        state.distincts[ai].insert(v);
                    }
                }
            }
        }
        self.child.close();
        self.groups = groups;
        self.emit = 0;
        Ok(())
    }

    fn next(&mut self, _db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        if self.emit >= self.groups.len() {
            return Ok(None);
        }
        let (key, state) = &self.groups[self.emit];
        self.emit += 1;
        tc.charge(tc.r.exec_agg, instr::AGG_UPDATE);
        let mut out = key.clone();
        for (ai, spec) in self.aggs.iter().enumerate() {
            out.push(match spec.func {
                AggFunc::Count => Value::Int(state.count),
                AggFunc::CountNonNull => Value::Int(state.non_null[ai]),
                AggFunc::Sum => Value::Decimal(state.sums[ai]),
                AggFunc::Avg => Value::Decimal(if state.count == 0 {
                    0
                } else {
                    state.sums[ai] / state.count
                }),
                AggFunc::Min => Value::Decimal(state.mins[ai]),
                AggFunc::Max => Value::Decimal(state.maxs[ai]),
                AggFunc::CountDistinct => Value::Int(state.distincts[ai].len() as i64),
            });
        }
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.groups.clear();
        self.emit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::Scalar;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};

    #[test]
    fn group_count_and_sum() {
        let (db, t) = sample_db(70);
        let mut tc = db.null_ctx();
        // SELECT grp, count(*), sum(amount) GROUP BY grp — 7 groups of 10.
        let mut agg = HashAggregate::new(
            Box::new(SeqScan::new(t)),
            vec![1],
            vec![AggSpec::count(), AggSpec::sum(Scalar::Col(2))],
        );
        let mut rows = run_to_vec(&mut agg, &db, &mut tc).unwrap();
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(rows.len(), 7);
        for (g, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::Int(g as i64));
            assert_eq!(r[1], Value::Int(10));
            // ids g, g+7, ..., g+63 → amounts 100*sum
            let expect: i64 = (0..10).map(|k| (g as i64 + 7 * k) * 100).sum();
            assert_eq!(r[2], Value::Decimal(expect));
        }
    }

    #[test]
    fn avg_min_max_distinct() {
        let (db, t) = sample_db(70);
        let mut tc = db.null_ctx();
        let mut agg = HashAggregate::new(
            Box::new(SeqScan::new(t)),
            vec![],
            vec![
                AggSpec::avg(Scalar::Col(0)),
                AggSpec::min(Scalar::Col(0)),
                AggSpec::max(Scalar::Col(0)),
                AggSpec::count_distinct(Scalar::Col(1)),
            ],
        );
        let rows = run_to_vec(&mut agg, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Decimal((0..70).sum::<i64>() / 70));
        assert_eq!(rows[0][1], Value::Decimal(0));
        assert_eq!(rows[0][2], Value::Decimal(69));
        assert_eq!(rows[0][3], Value::Int(7));
    }

    #[test]
    fn empty_input_no_groups() {
        let (db, t) = sample_db(0);
        let mut tc = db.null_ctx();
        let mut agg =
            HashAggregate::new(Box::new(SeqScan::new(t)), vec![1], vec![AggSpec::count()]);
        let rows = run_to_vec(&mut agg, &db, &mut tc).unwrap();
        assert!(rows.is_empty());
    }
}
