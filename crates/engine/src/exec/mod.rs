//! Volcano-style (open/next/close) query executor.
//!
//! One row at a time through a tree of operators — the execution
//! discipline of the paper-era commercial row stores, and the reason their
//! instruction paths per tuple are long (per-tuple virtual calls through
//! many operators). The staged engine (`dbcmp-staged`) reuses these
//! operators but schedules them in batches per stage.
//!
//! Operators run read-only against the database (reporting isolation);
//! transactional access goes through [`Database`]
//! methods directly.

pub mod expr;
pub mod filter;
pub mod hash_agg;
pub mod hash_join;
pub mod index_join;
pub mod index_scan;
pub mod limit;
pub mod nested_loop;
pub mod project;
pub mod rows;
pub mod scan;
pub mod shuffle_join;
pub mod sort;

pub use expr::{AggFunc, AggSpec, CmpOp, Pred, Scalar};
pub use filter::Filter;
pub use hash_agg::HashAggregate;
pub use hash_join::{HashJoin, JoinKind};
pub use index_join::IndexJoin;
pub use index_scan::IndexRangeScan;
pub use limit::Limit;
pub use nested_loop::NestedLoop;
pub use project::Project;
pub use rows::Rows;
pub use scan::SeqScan;
pub use shuffle_join::{ExchangeStrategy, PartitionedTable, ShuffleJoin};
pub use sort::Sort;

use crate::db::Database;
use crate::error::Result;
use crate::tctx::TraceCtx;
use crate::types::Row;

/// The iterator interface every operator implements.
pub trait Executor {
    /// Prepare for iteration (materialize build sides, open cursors).
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()>;
    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>>;
    /// Release state (the operator may be re-opened afterwards).
    fn close(&mut self);
}

/// Boxed operator (plan node).
pub type BoxExec = Box<dyn Executor + Send>;

/// Drive a plan to completion, collecting all rows.
pub fn run_to_vec(plan: &mut dyn Executor, db: &Database, tc: &mut TraceCtx) -> Result<Vec<Row>> {
    plan.open(db, tc)?;
    let mut out = Vec::new();
    while let Some(row) = plan.next(db, tc)? {
        out.push(row);
    }
    plan.close();
    Ok(out)
}

/// Drive a plan, counting rows without materializing them.
pub fn run_count(plan: &mut dyn Executor, db: &Database, tc: &mut TraceCtx) -> Result<usize> {
    plan.open(db, tc)?;
    let mut n = 0;
    while plan.next(db, tc)?.is_some() {
        n += 1;
    }
    plan.close();
    Ok(n)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::schema::Schema;
    use crate::types::{ColType, Value};

    /// A small table: (id INT, grp INT, amount DECIMAL, name STR).
    pub fn sample_db(rows: i64) -> (Database, usize) {
        let mut db = Database::new();
        let t = db.create_table(
            "sample",
            Schema::new(vec![
                ("id", ColType::Int),
                ("grp", ColType::Int),
                ("amount", ColType::Decimal),
                ("name", ColType::Str(12)),
            ]),
        );
        let mut tc = db.null_ctx();
        let mut txn = db.begin(&mut tc);
        for i in 0..rows {
            db.insert(
                &mut txn,
                t,
                &[
                    Value::Int(i),
                    Value::Int(i % 7),
                    Value::Decimal(i * 100),
                    Value::Str(format!("name{}", i % 5)),
                ],
                &mut tc,
            )
            .unwrap();
        }
        db.commit(txn, &mut tc).unwrap();
        (db, t)
    }
}
