//! Index range scan: B+Tree cursor + heap fetch.

use crate::btree::Cursor;
use crate::catalog::IndexId;
use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::Executor;
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Scan an index over `[lo, hi]`, fetching matching heap rows.
#[derive(Debug)]
pub struct IndexRangeScan {
    index: IndexId,
    lo: u64,
    hi: u64,
    cursor: Option<Cursor>,
}

impl IndexRangeScan {
    /// Scan `index` over the inclusive key range `[lo, hi]`.
    pub fn new(index: IndexId, lo: u64, hi: u64) -> Self {
        IndexRangeScan {
            index,
            lo,
            hi,
            cursor: None,
        }
    }
}

impl Executor for IndexRangeScan {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.cursor = Some(db.index_cursor(self.index, self.lo, self.hi, tc));
        Ok(())
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        // lint:allow(panic): Volcano contract — open() precedes next(); a None cursor is a planner bug, not input-dependent
        let cur = self.cursor.as_mut().expect("next before open");
        let table = db.index_table(self.index);
        loop {
            match db.index_cursor_next(self.index, cur, tc) {
                Some((_key, rid)) => {
                    tc.charge(tc.r.exec_scan, instr::SCAN_STEP);
                    match db.table(table).read_at(rid, tc) {
                        Some(row) => return Ok(Some(row)),
                        None => continue, // row deleted after index read
                    }
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) {
        self.cursor = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_to_vec;
    use crate::exec::testutil::sample_db;
    use crate::types::Value;

    #[test]
    fn range_fetches_rows() {
        let (mut db, t) = sample_db(200);
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tc = db.null_ctx();
        let mut scan = IndexRangeScan::new(idx, 50, 59);
        let rows = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0][0], Value::Int(50));
        assert_eq!(rows[9][0], Value::Int(59));
    }

    #[test]
    fn empty_range() {
        let (mut db, t) = sample_db(10);
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tc = db.null_ctx();
        let mut scan = IndexRangeScan::new(idx, 100, 200);
        let rows = run_to_vec(&mut scan, &db, &mut tc).unwrap();
        assert!(rows.is_empty());
    }
}
