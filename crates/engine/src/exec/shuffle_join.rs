//! Shuffle hash join: the distributed flavor of [`HashJoin`].
//!
//! A network-partitioned join runs the same build/probe machinery as
//! [`HashJoin`], but the rows of both sides may first cross an
//! *exchange*: each engine instance hash-partitions its fragment's rows
//! by join key and ships every row whose key hashes to another instance
//! (or broadcasts small build sides to every instance). The exchange
//! itself — routing charges, tuple (de)serialization, and the
//! `RemoteSend`/`RemoteRecv` traffic priced by the simulator's
//! interconnect model — is driven by the capture layer
//! (`workloads::exchange`); this operator covers the two local halves:
//!
//! * [`ShuffleJoin::local`] — the single-instance degenerate case,
//!   which delegates to a real [`HashJoin`] so its event stream is
//!   identical to the non-distributed plan by construction.
//! * [`ShuffleJoin::pre_exchanged`] — one instance's share of a
//!   distributed join: build and probe rows that already include
//!   whatever the exchange delivered, joined with [`HashJoin`]'s exact
//!   per-row accounting via [`PartitionedTable`].

// Hash collections here are audited per-site with lint:allow(hash-order)
// annotations (rule D1); the file-level clippy opt-out avoids repeating
// an attribute at every justified site.
#![allow(clippy::disallowed_types)]

// lint:allow(hash-order): build tables are probed by key only; output follows probe-stream order
use std::collections::HashMap;

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::hash_join::{bucket_addr, match_load};
use crate::exec::{BoxExec, Executor, HashJoin, JoinKind};
use crate::tctx::TraceCtx;
use crate::types::{Row, Value};

/// How a distributed join moves rows between instances. Chosen per join
/// by the capture layer's dispatch rule (`exchange_rows` in
/// `workloads::exchange`) and labeled in the figure pipeline
/// (`exchange_label` in `core::figures`) — the dbcmp-lint X3 rule keeps
/// both surfaces exhaustive over this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// Single instance: no exchange at all. The plan degenerates to a
    /// plain [`HashJoin`] (event-identical by construction).
    Local,
    /// Ship the whole (small) build side to every instance; probe rows
    /// stay where they are. Pays `(n-1) x build bytes`, nothing on the
    /// probe side.
    Broadcast,
    /// Hash-partition both sides by join key; every row whose key
    /// hashes to another instance is shipped. Pays roughly
    /// `(n-1)/n` of both sides' bytes.
    Shuffle,
}

/// The destination instance for a join key in an `n`-instance shuffle:
/// the same multiplicative mix [`bucket_addr`] uses, reduced mod `n` —
/// so rows that collide in a bucket also land on the same instance.
pub fn partition_of(key: &Value, n: usize) -> usize {
    let h = match key {
        Value::Int(v) | Value::Decimal(v) => *v as u64,
        Value::Date(d) => *d as u64,
        Value::Str(s) => s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        }),
        Value::Null => 0,
    };
    (h.wrapping_mul(0x9E3779B97F4A7C15) % (n.max(1) as u64)) as usize
}

/// One instance's build table for a distributed join, with exactly
/// [`HashJoin`]'s per-row accounting: `HJ_BUILD_ROW` per input row,
/// NULL keys skipped after the charge, one 16-byte store per admitted
/// row at its [`bucket_addr`] line, probes a dependent 16-byte load on
/// the bucket header plus one load per match.
pub struct PartitionedTable {
    // lint:allow(hash-order): probed per key; per-key match Vecs preserve input order
    table: HashMap<Value, Vec<Row>>,
    addr: u64,
    n_buckets: u64,
    build_width: usize,
    chain_walks: bool,
}

impl PartitionedTable {
    /// Materialize `rows` (local fragment rows followed by whatever the
    /// exchange delivered, in delivery order) into a hash table keyed on
    /// column `key`. Table geometry and charges match [`HashJoin`]'s
    /// open path: buckets sized to the *input* cardinality, scratch
    /// allocated through the context's arena.
    pub fn build(db: &Database, tc: &mut TraceCtx, rows: Vec<Row>, key: usize) -> Self {
        let n_buckets = (rows.len() as u64).next_power_of_two().max(64);
        let addr = tc.scratch_alloc(&db.space, n_buckets * 64);
        // lint:allow(hash-order): filled in deterministic input order; the map is only ever probed
        let mut table: HashMap<Value, Vec<Row>> = HashMap::with_capacity(rows.len());
        let mut build_width = 0;
        for row in rows {
            tc.charge(tc.r.exec_hashjoin, instr::HJ_BUILD_ROW);
            build_width = row.len();
            let k = row[key].clone();
            // SQL semantics: NULL keys never participate in an equi-join.
            if k.is_null() {
                continue;
            }
            tc.store(bucket_addr(addr, n_buckets, &k), 16);
            table.entry(k).or_default().push(row);
        }
        PartitionedTable {
            table,
            addr,
            n_buckets,
            build_width,
            chain_walks: false,
        }
    }

    /// Opt into chain-walk accounting on duplicate-key buckets (see
    /// [`HashJoin::with_chain_walks`]). Off by default.
    pub fn with_chain_walks(mut self, on: bool) -> Self {
        self.chain_walks = on;
        self
    }

    /// Simulated footprint of the bucket array in bytes.
    pub fn bytes(&self) -> u64 {
        self.n_buckets * 64
    }

    /// Width of the admitted build rows (0 if none were admitted).
    pub fn build_width(&self) -> usize {
        self.build_width
    }

    /// Probe one row keyed on column `probe_key`, pushing `probe ++
    /// build` outputs onto `pending` with [`HashJoin`]'s exact charges.
    /// Returns `false` for a NULL probe key or an empty bucket (the
    /// caller decides what outer joins do with the unmatched row).
    pub fn probe_into(
        &self,
        probe_row: &Row,
        probe_key: usize,
        tc: &mut TraceCtx,
        pending: &mut Vec<Row>,
    ) -> bool {
        tc.charge(tc.r.exec_hashjoin, instr::HJ_PROBE_ROW);
        let key = &probe_row[probe_key];
        if key.is_null() {
            return false;
        }
        // Bucket header: dependent load (chain walk).
        let addr = bucket_addr(self.addr, self.n_buckets, key);
        tc.load_dep(addr, 16);
        match self.table.get(key) {
            Some(matches) => {
                for (j, m) in matches.iter().enumerate() {
                    match_load(tc, addr, j, self.chain_walks);
                    let mut out = probe_row.clone();
                    out.extend(m.iter().cloned());
                    pending.push(out);
                }
                true
            }
            None => false,
        }
    }
}

/// One instance's share of a distributed hash join (see module docs).
pub struct ShuffleJoin {
    inner: Inner,
}

enum Inner {
    Local(HashJoin),
    Dist {
        build_rows: Vec<Row>,
        probe_rows: Vec<Row>,
        build_key: usize,
        probe_key: usize,
        kind: JoinKind,
        chain_walks: bool,
        table: Option<PartitionedTable>,
        cursor: usize,
        pending: Vec<Row>,
    },
}

impl ShuffleJoin {
    /// The single-instance plan: a plain [`HashJoin`] over the local
    /// children. Event-identical to writing `HashJoin` directly.
    pub fn local(
        build: BoxExec,
        build_key: usize,
        probe: BoxExec,
        probe_key: usize,
        kind: JoinKind,
    ) -> Self {
        ShuffleJoin {
            inner: Inner::Local(HashJoin::new(build, build_key, probe, probe_key, kind)),
        }
    }

    /// One instance's post-exchange join: `build_rows` and `probe_rows`
    /// already include whatever the exchange delivered (local fragment
    /// rows first, then inbound rows in delivery order).
    pub fn pre_exchanged(
        build_rows: Vec<Row>,
        probe_rows: Vec<Row>,
        build_key: usize,
        probe_key: usize,
        kind: JoinKind,
    ) -> Self {
        ShuffleJoin {
            inner: Inner::Dist {
                build_rows,
                probe_rows,
                build_key,
                probe_key,
                kind,
                chain_walks: false,
                table: None,
                cursor: 0,
                pending: Vec::new(),
            },
        }
    }

    /// Opt into chain-walk accounting (see
    /// [`HashJoin::with_chain_walks`]). Off by default.
    pub fn with_chain_walks(mut self, on: bool) -> Self {
        match &mut self.inner {
            Inner::Local(hj) => {
                let mut taken = HashJoin::new(
                    Box::new(super::rows::Rows::new(Vec::new())),
                    0,
                    Box::new(super::rows::Rows::new(Vec::new())),
                    0,
                    JoinKind::Inner,
                );
                std::mem::swap(hj, &mut taken);
                *hj = taken.with_chain_walks(on);
            }
            Inner::Dist { chain_walks, .. } => *chain_walks = on,
        }
        self
    }
}

impl Executor for ShuffleJoin {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        match &mut self.inner {
            Inner::Local(hj) => hj.open(db, tc),
            Inner::Dist {
                build_rows,
                build_key,
                chain_walks,
                table,
                cursor,
                pending,
                ..
            } => {
                let rows = std::mem::take(build_rows);
                *table = Some(
                    PartitionedTable::build(db, tc, rows, *build_key)
                        .with_chain_walks(*chain_walks),
                );
                *cursor = 0;
                pending.clear();
                Ok(())
            }
        }
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        match &mut self.inner {
            Inner::Local(hj) => hj.next(db, tc),
            Inner::Dist {
                probe_rows,
                probe_key,
                kind,
                table,
                cursor,
                pending,
                ..
            } => {
                let Some(table) = table.as_ref() else {
                    return Ok(None);
                };
                loop {
                    if let Some(out) = pending.pop() {
                        return Ok(Some(out));
                    }
                    let Some(probe_row) = probe_rows.get(*cursor) else {
                        return Ok(None);
                    };
                    *cursor += 1;
                    let matched = table.probe_into(probe_row, *probe_key, tc, pending);
                    if !matched && *kind == JoinKind::LeftOuter {
                        let mut out = probe_row.clone();
                        out.extend(std::iter::repeat_n(Value::Null, table.build_width()));
                        return Ok(Some(out));
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        match &mut self.inner {
            Inner::Local(hj) => hj.close(),
            Inner::Dist {
                table,
                pending,
                probe_rows,
                ..
            } => {
                *table = None;
                pending.clear();
                probe_rows.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};
    use dbcmp_trace::CodeRegions;

    fn recording_ctx(db: &Database) -> TraceCtx {
        let _ = db;
        let mut r = CodeRegions::new();
        let er = crate::costs::EngineRegions::register(&mut r);
        TraceCtx::recording(er)
    }

    /// `ShuffleJoin::local` is event-identical to a plain `HashJoin` on
    /// the same children — the n=1 anchor the distributed capture rests
    /// on.
    #[test]
    fn local_flavor_matches_hash_join_events() {
        // Fresh database per run: the simulated allocator state (and so
        // the table's scratch address) must be identical across runs.
        let run = |shuffle: bool| {
            let (db, t) = sample_db(40);
            let mut tc = recording_ctx(&db);
            let build: BoxExec = Box::new(SeqScan::new(t));
            let probe: BoxExec = Box::new(SeqScan::new(t));
            let rows = if shuffle {
                let mut j = ShuffleJoin::local(build, 1, probe, 1, JoinKind::Inner);
                run_to_vec(&mut j, &db, &mut tc).unwrap()
            } else {
                let mut j = HashJoin::new(build, 1, probe, 1, JoinKind::Inner);
                run_to_vec(&mut j, &db, &mut tc).unwrap()
            };
            (rows, tc.finish())
        };
        let (rows_hj, tr_hj) = run(false);
        let (rows_sj, tr_sj) = run(true);
        assert_eq!(rows_hj, rows_sj);
        assert_eq!(tr_hj.packed_events(), tr_sj.packed_events());
    }

    /// A pre-exchanged join over ALL rows on one instance produces the
    /// same row multiset as the plain `HashJoin`, and the partitions of
    /// a 2-way split reproduce it together.
    #[test]
    fn pre_exchanged_partitions_cover_the_join() {
        let (db, t) = sample_db(30);
        let mut tc = db.null_ctx();
        let all = run_to_vec(&mut SeqScan::new(t), &db, &mut tc).unwrap();
        let mut reference = run_to_vec(
            &mut HashJoin::new(
                Box::new(SeqScan::new(t)),
                1,
                Box::new(SeqScan::new(t)),
                1,
                JoinKind::Inner,
            ),
            &db,
            &mut tc,
        )
        .unwrap();

        let n = 2;
        let mut got = Vec::new();
        for p in 0..n {
            let side = |rows: &[Row]| -> Vec<Row> {
                rows.iter()
                    .filter(|r| partition_of(&r[1], n) == p)
                    .cloned()
                    .collect()
            };
            let mut j = ShuffleJoin::pre_exchanged(side(&all), side(&all), 1, 1, JoinKind::Inner);
            got.extend(run_to_vec(&mut j, &db, &mut tc).unwrap());
        }
        reference.sort();
        got.sort();
        assert_eq!(got, reference);
    }

    /// Keys that share a bucket also share a shuffle destination: the
    /// instance-routing hash is the bucket hash reduced mod n.
    #[test]
    fn partition_follows_bucket_hash() {
        for n in [1usize, 2, 3, 4, 7] {
            for v in [
                Value::Int(42),
                Value::Date(177),
                Value::Str("BRAND#13".into()),
                Value::Null,
            ] {
                let p = partition_of(&v, n);
                assert!(p < n.max(1));
                // Same mixing as bucket_addr: bucket index mod n agrees
                // when n divides the bucket count.
                let buckets = 64u64;
                let line = (bucket_addr(0, buckets, &v) / 64) % buckets;
                if buckets.is_multiple_of(n as u64) {
                    assert_eq!(p as u64, line % (n as u64));
                }
            }
        }
    }
}
