//! In-memory row source: replays an already-materialized row vector
//! through the executor interface.
//!
//! Distributed plans use it to feed rows that crossed an exchange (and
//! were charged routing/shipping cost there) into ordinary operators —
//! e.g. a partial aggregate over a shuffle join's output, or the
//! coordinator's merge aggregate over shipped partials. The source
//! itself charges nothing: the rows' production cost was paid where
//! they were produced, and their shipping cost at the exchange.

use crate::db::Database;
use crate::error::Result;
use crate::exec::Executor;
use crate::tctx::TraceCtx;
use crate::types::Row;

/// A row-vector source (see module docs). Re-openable: `open` rewinds
/// the cursor to the first row.
pub struct Rows {
    rows: Vec<Row>,
    cursor: usize,
}

impl Rows {
    /// Wrap `rows` as an executor source.
    pub fn new(rows: Vec<Row>) -> Self {
        Rows { rows, cursor: 0 }
    }
}

impl Executor for Rows {
    fn open(&mut self, _db: &Database, _tc: &mut TraceCtx) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next(&mut self, _db: &Database, _tc: &mut TraceCtx) -> Result<Option<Row>> {
        let row = self.rows.get(self.cursor).cloned();
        if row.is_some() {
            self.cursor += 1;
        }
        Ok(row)
    }

    fn close(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_to_vec;
    use crate::types::Value;

    #[test]
    fn replays_rows_in_order_and_reopens() {
        let db = Database::new();
        let mut tc = db.null_ctx();
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
        ];
        let mut src = Rows::new(rows.clone());
        assert_eq!(run_to_vec(&mut src, &db, &mut tc).unwrap(), rows);
        // Re-open rewinds.
        assert_eq!(run_to_vec(&mut src, &db, &mut tc).unwrap(), rows);
        let before = tc.instrs();
        let mut empty = Rows::new(Vec::new());
        assert!(run_to_vec(&mut empty, &db, &mut tc).unwrap().is_empty());
        assert_eq!(tc.instrs(), before, "the source charges nothing");
    }
}
