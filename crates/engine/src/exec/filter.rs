//! Selection operator.

use crate::db::Database;
use crate::error::Result;
use crate::exec::expr::Pred;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Pass rows matching a predicate.
pub struct Filter {
    child: BoxExec,
    pred: Pred,
}

impl Filter {
    /// Pass through `child`'s rows that satisfy `pred`.
    pub fn new(child: BoxExec, pred: Pred) -> Self {
        Filter { child, pred }
    }
}

impl Executor for Filter {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.child.open(db, tc)
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        while let Some(row) = self.child.next(db, tc)? {
            if self.pred.eval(&row, tc) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.child.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::CmpOp;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};
    use crate::types::Value;

    #[test]
    fn filters_rows() {
        let (db, t) = sample_db(100);
        let mut tc = db.null_ctx();
        let mut plan = Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                val: Value::Int(3),
            },
        );
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        // grp = id % 7 == 3 → ids 3, 10, 17, ...
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r[1] == Value::Int(3)));
        assert_eq!(rows.len(), (0..100).filter(|i| i % 7 == 3).count());
    }
}
