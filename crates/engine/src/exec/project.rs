//! Projection / expression evaluation operator.

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::expr::Scalar;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Emit computed columns.
pub struct Project {
    child: BoxExec,
    exprs: Vec<Scalar>,
}

impl Project {
    /// Emit one computed column per expression in `exprs`.
    pub fn new(child: BoxExec, exprs: Vec<Scalar>) -> Self {
        Project { child, exprs }
    }

    /// Convenience: plain column selection.
    pub fn cols(child: BoxExec, cols: &[usize]) -> Self {
        Project {
            child,
            exprs: cols.iter().map(|&c| Scalar::Col(c)).collect(),
        }
    }
}

impl Executor for Project {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.child.open(db, tc)
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        match self.child.next(db, tc)? {
            Some(row) => {
                tc.charge(
                    tc.r.exec_project,
                    instr::PROJECT_EXPR * self.exprs.len() as u32,
                );
                Ok(Some(self.exprs.iter().map(|e| e.eval(&row)).collect()))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};
    use crate::types::Value;

    #[test]
    fn projects_and_computes() {
        let (db, t) = sample_db(10);
        let mut tc = db.null_ctx();
        // id, amount*2 (decimal-aware: amount * 2.00 / 100)
        let mut plan = Project::new(
            Box::new(SeqScan::new(t)),
            vec![
                Scalar::Col(0),
                Scalar::MulDec(Box::new(Scalar::Col(2)), Box::new(Scalar::ConstDec(200))),
            ],
        );
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3], vec![Value::Int(3), Value::Decimal(600)]);
        assert_eq!(rows[3].len(), 2);
    }
}
