//! Sort operator (materializing).

use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Sort key: column index + descending flag.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index into the input row.
    pub col: usize,
    /// Sort descending when `true`.
    pub desc: bool,
}

/// Materialize the child and sort. Comparison instructions are charged at
/// n·log2(n); the sort buffer is a traced region written once per row.
pub struct Sort {
    child: BoxExec,
    keys: Vec<SortKey>,
    rows: Vec<Row>,
    emit: usize,
}

impl Sort {
    /// Sort `child`'s rows by `keys`, major key first.
    pub fn new(child: BoxExec, keys: Vec<SortKey>) -> Self {
        Sort {
            child,
            keys,
            rows: Vec::new(),
            emit: 0,
        }
    }

    /// Ascending single-column sort.
    pub fn asc(child: BoxExec, col: usize) -> Self {
        Sort::new(child, vec![SortKey { col, desc: false }])
    }

    /// Descending single-column sort.
    pub fn desc(child: BoxExec, col: usize) -> Self {
        Sort::new(child, vec![SortKey { col, desc: true }])
    }
}

impl Executor for Sort {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.child.open(db, tc)?;
        self.rows.clear();
        self.emit = 0;
        let buf = tc.scratch_alloc(&db.space, 1 << 20);
        while let Some(row) = self.child.next(db, tc)? {
            let width = (row.len() as u64) * 16;
            tc.store(
                buf + (self.rows.len() as u64 * width) % (1 << 20),
                width as u32,
            );
            self.rows.push(row);
        }
        self.child.close();

        let n = self.rows.len().max(2) as f64;
        let cmps = (n * n.log2()) as u32;
        tc.charge(
            tc.r.exec_sort,
            instr::SORT_CMP.saturating_mul(cmps.min(50_000_000)),
        );
        let keys = self.keys.clone();
        self.rows.sort_by(|a, b| {
            for k in &keys {
                let ord = a[k.col]
                    .partial_cmp(&b[k.col])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    fn next(&mut self, _db: &Database, _tc: &mut TraceCtx) -> Result<Option<Row>> {
        if self.emit >= self.rows.len() {
            return Ok(None);
        }
        let row = self.rows[self.emit].clone();
        self.emit += 1;
        Ok(Some(row))
    }

    fn close(&mut self) {
        self.rows.clear();
        self.emit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};
    use crate::types::Value;

    #[test]
    fn sorts_ascending_and_descending() {
        let (db, t) = sample_db(50);
        let mut tc = db.null_ctx();
        let mut plan = Sort::desc(Box::new(SeqScan::new(t)), 0);
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        assert_eq!(rows[0][0], Value::Int(49));
        assert_eq!(rows[49][0], Value::Int(0));

        let mut plan = Sort::asc(Box::new(SeqScan::new(t)), 0);
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        assert_eq!(rows[0][0], Value::Int(0));
    }

    #[test]
    fn multi_key_sort() {
        let (db, t) = sample_db(50);
        let mut tc = db.null_ctx();
        // Sort by grp asc, id desc.
        let mut plan = Sort::new(
            Box::new(SeqScan::new(t)),
            vec![
                SortKey {
                    col: 1,
                    desc: false,
                },
                SortKey { col: 0, desc: true },
            ],
        );
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        for w in rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ga = a[1].as_i64().unwrap();
            let gb = b[1].as_i64().unwrap();
            assert!(ga <= gb);
            if ga == gb {
                assert!(a[0].as_i64().unwrap() >= b[0].as_i64().unwrap());
            }
        }
    }
}
