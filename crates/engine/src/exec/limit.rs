//! LIMIT operator.

use crate::db::Database;
use crate::error::Result;
use crate::exec::{BoxExec, Executor};
use crate::tctx::TraceCtx;
use crate::types::Row;

/// Pass through the first `n` rows.
pub struct Limit {
    child: BoxExec,
    n: usize,
    seen: usize,
}

impl Limit {
    /// Emit at most `n` of `child`'s rows.
    pub fn new(child: BoxExec, n: usize) -> Self {
        Limit { child, n, seen: 0 }
    }
}

impl Executor for Limit {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        self.seen = 0;
        self.child.open(db, tc)
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        if self.seen >= self.n {
            return Ok(None);
        }
        match self.child.next(db, tc)? {
            Some(row) => {
                self.seen += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, SeqScan};

    #[test]
    fn caps_output() {
        let (db, t) = sample_db(100);
        let mut tc = db.null_ctx();
        let mut plan = Limit::new(Box::new(SeqScan::new(t)), 7);
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn limit_larger_than_input() {
        let (db, t) = sample_db(5);
        let mut tc = db.null_ctx();
        let mut plan = Limit::new(Box::new(SeqScan::new(t)), 100);
        let rows = run_to_vec(&mut plan, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 5);
    }
}
