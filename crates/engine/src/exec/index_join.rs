//! Index-nested-loop join: probe a B+Tree index with each outer row.
//!
//! For every outer row the join extracts a `u64` key from `outer_key`,
//! descends the B+Tree (dependent loads per level, charged to the
//! `btree-search` region by the tree itself) and fetches the matching heap
//! row. The B+Tree holds unique keys, so each probe yields at most one
//! match — the N:1 shape of foreign-key joins (lineitem→orders). Unlike
//! [`HashJoin`](crate::exec::HashJoin) there is no build-side working set:
//! the cache pressure is the index's internal nodes plus the heap fetches.

use crate::catalog::IndexId;
use crate::costs::instr;
use crate::db::Database;
use crate::error::Result;
use crate::exec::{BoxExec, Executor, JoinKind};
use crate::tctx::TraceCtx;
use crate::types::{Row, Value};

/// Index-nested-loop join: `outer` streamed; for each outer row the
/// `index` is probed with the key in column `outer_key`. Output = outer
/// row ++ inner (indexed-table) row. `LeftOuter` preserves unmatched
/// outer rows padded with NULLs.
pub struct IndexJoin {
    outer: BoxExec,
    outer_key: usize,
    index: IndexId,
    kind: JoinKind,
    inner_width: usize,
}

impl IndexJoin {
    /// Create a join of `outer` (on column `outer_key`) against `index`.
    pub fn new(outer: BoxExec, outer_key: usize, index: IndexId, kind: JoinKind) -> Self {
        IndexJoin {
            outer,
            outer_key,
            index,
            kind,
            inner_width: 0,
        }
    }
}

impl Executor for IndexJoin {
    fn open(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<()> {
        // Padding width for unmatched probes: the indexed table's arity.
        self.inner_width = db.table(db.index_table(self.index)).schema.columns().len();
        self.outer.open(db, tc)
    }

    fn next(&mut self, db: &Database, tc: &mut TraceCtx) -> Result<Option<Row>> {
        loop {
            let Some(outer_row) = self.outer.next(db, tc)? else {
                return Ok(None);
            };
            tc.charge(tc.r.exec_nlj, instr::INL_PROBE_ROW);
            // NULL (or non-integer) keys never match, SQL-style.
            let matched = outer_row[self.outer_key]
                .as_i64()
                .and_then(|key| db.index_get(self.index, key as u64, tc))
                .and_then(|rid| db.table(db.index_table(self.index)).read_at(rid, tc));
            match matched {
                Some(inner_row) => {
                    let mut out = outer_row;
                    out.extend(inner_row);
                    return Ok(Some(out));
                }
                None if self.kind == JoinKind::LeftOuter => {
                    let mut out = outer_row;
                    out.extend(std::iter::repeat_n(Value::Null, self.inner_width));
                    return Ok(Some(out));
                }
                None => {}
            }
        }
    }

    fn close(&mut self) {
        self.outer.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::{CmpOp, Pred};
    use crate::exec::testutil::sample_db;
    use crate::exec::{run_to_vec, Filter, Project, Scalar, SeqScan};

    #[test]
    fn inner_probe_matches_unique_keys() {
        let (mut db, t) = sample_db(40);
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tc = db.null_ctx();
        // Outer: ids 0..10 remapped so that outer col 0 = id*1 (self join
        // on id through the index).
        let outer = Box::new(Filter::new(
            Box::new(SeqScan::new(t)),
            Pred::Cmp {
                col: 0,
                op: CmpOp::Lt,
                val: Value::Int(10),
            },
        ));
        let mut join = IndexJoin::new(outer, 0, idx, JoinKind::Inner);
        let rows = run_to_vec(&mut join, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].len(), 8, "outer (4) ++ inner (4)");
        for r in &rows {
            assert_eq!(r[0], r[4], "probe key must match indexed key");
        }
    }

    #[test]
    fn unmatched_probes_drop_or_pad() {
        let (mut db, t) = sample_db(20);
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tc = db.null_ctx();
        // Outer keys = id + 100 → no key matches the indexed 0..20.
        let shifted = |t| {
            Box::new(Project::new(
                Box::new(SeqScan::new(t)),
                vec![Scalar::Add(
                    Box::new(Scalar::Col(0)),
                    Box::new(Scalar::ConstDec(100)),
                )],
            ))
        };
        let mut inner = IndexJoin::new(shifted(t), 0, idx, JoinKind::Inner);
        assert!(run_to_vec(&mut inner, &db, &mut tc).unwrap().is_empty());

        let mut outer = IndexJoin::new(shifted(t), 0, idx, JoinKind::LeftOuter);
        let rows = run_to_vec(&mut outer, &db, &mut tc).unwrap();
        assert_eq!(rows.len(), 20, "left-outer preserves every probe row");
        for r in &rows {
            assert_eq!(r.len(), 1 + 4, "probe (1 col) padded with inner arity");
            assert!(r[1..].iter().all(Value::is_null));
        }
    }

    #[test]
    fn null_keys_never_match() {
        let (mut db, t) = sample_db(5);
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tc = db.null_ctx();
        let nulls = Box::new(Project::new(Box::new(SeqScan::new(t)), vec![Scalar::Null]));
        let mut join = IndexJoin::new(nulls, 0, idx, JoinKind::Inner);
        assert!(
            run_to_vec(&mut join, &db, &mut tc).unwrap().is_empty(),
            "NULL probe keys must not match any indexed key"
        );
    }
}
