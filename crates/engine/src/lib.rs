//! `dbcmp-engine` — a from-scratch, in-memory relational row-store.
//!
//! This is the reproduction's stand-in for the paper's "commercial DBMS":
//! a storage manager with slotted pages and a buffer-pool indirection, a
//! B+Tree index, a row-level two-phase-locking lock manager, WAL-lite
//! logging, transactions with undo, and a Volcano-style (open/next/close)
//! query executor — the architecture of the row-store engines of the
//! paper's era.
//!
//! Every operation is *instrumented*: data-structure accesses go through a
//! [`TraceCtx`], recording loads/stores against a simulated address space
//! and charging instructions to named code regions (see [`costs`]). The
//! captured traces carry exactly the properties the paper's
//! characterization depends on:
//!
//! * B+Tree descents and hash-chain walks emit *dependent* loads
//!   (serialized on an out-of-order core);
//! * the OLTP code path cycles through ~300 KB of code regions (lock
//!   manager, WAL, buffer pool, …) while DSS scan loops stay within a few
//!   tens of KB — the paper's instruction-footprint contrast;
//! * lock-table buckets, B+Tree roots and hot rows are shared addresses
//!   across client traces — the raw material for coherence traffic (SMP)
//!   vs shared-L2 hits (CMP).
//!
//! Concurrency model: statements execute one at a time, but *which*
//! transaction runs next is the caller's choice — the interleaved capture
//! scheduler advances many open transactions in round-robin slices.
//! Under [`db::LockPolicy::Queue`] conflicting lock requests park on FIFO
//! wait queues ([`lockmgr`]), waits-for cycles abort the youngest
//! transaction, and blocked/woken sessions are recorded in the trace; the
//! default [`db::LockPolicy::NoWait`] keeps the immediate-conflict
//! discipline for sequential capture. Abort with undo and lock release at
//! commit are real in both modes, so any interleaving behaves correctly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod btree;
pub mod catalog;
pub mod cc;
pub mod costs;
pub mod db;
pub mod error;
pub mod exec;
pub mod heap;
pub mod lockmgr;
pub mod page;
pub mod schema;
pub mod tctx;
pub mod txn;
pub mod types;
pub mod wal;

pub use api::EngineOps;
pub use cc::{CcBackend, CcStats, ConcurrencyControl};
pub use costs::EngineRegions;
pub use db::{Database, LockPolicy};
pub use error::{EngineError, Result};
pub use schema::Schema;
pub use tctx::TraceCtx;
pub use txn::TxnId;
pub use types::{ColType, Row, Value};
