//! The database façade: tables + indexes + locks + log + transactions.
//!
//! OLTP code paths go through this API (locking, logging, undo); read-only
//! DSS queries go through the Volcano executor in [`crate::exec`], which
//! scans tables without row locks (degree-2 isolation for reporting
//! queries, as engines of the era did).

use std::sync::Arc;

use dbcmp_trace::{AddressSpace, CodeRegions};

use crate::btree::{BTree, Cursor};
use crate::catalog::{Catalog, IndexId, TableId};
use crate::cc::{
    CcBackend, CcStats, Centralized2PL, ConcurrencyControl, DeterministicOrdered,
    PartitionedPerCore,
};
use crate::costs::{instr, EngineRegions};
use crate::error::{EngineError, Result};
use crate::heap::{HeapTable, Rid};
use crate::lockmgr::{Grant, LockMode};
use crate::schema::Schema;
use crate::tctx::TraceCtx;
use crate::txn::{Txn, TxnState, UndoRec};
use crate::types::{Row, Value};
use crate::wal::{Wal, WalRecord};

/// Key-extraction function for an index: row + rid → packed u64 key.
pub type KeyFn = Box<dyn Fn(&[Value], Rid) -> u64 + Send + Sync>;

/// How row-lock conflicts behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// Conflicts surface immediately as [`EngineError::LockConflict`]
    /// (the seed's discipline; sequential capture).
    #[default]
    NoWait,
    /// Conflicts park on FIFO wait queues: the caller receives
    /// [`EngineError::LockWait`] and must retry the same operation after
    /// the scheduler wakes it; waits-for cycles abort the youngest
    /// transaction with [`EngineError::Deadlock`]. Used by the interleaved
    /// multi-client capture.
    Queue,
}

/// The whole database instance.
pub struct Database {
    /// Simulated data address space shared by every structure.
    pub space: Arc<AddressSpace>,
    regions: CodeRegions,
    /// Engine code-region ids (copied into every [`TraceCtx`]).
    pub er: EngineRegions,
    catalog: Catalog,
    heaps: Vec<HeapTable>,
    indexes: Vec<BTree>,
    index_table: Vec<TableId>,
    key_fns: Vec<KeyFn>,
    cc: Box<dyn ConcurrencyControl>,
    lock_policy: LockPolicy,
    wal: Wal,
    next_txn: u64,
}

impl Database {
    /// An empty database with fresh address space and region table.
    pub fn new() -> Self {
        Self::with_space(Arc::new(AddressSpace::new()))
    }

    /// An empty database over a caller-provided address space —
    /// shared-nothing deployments give each engine instance its own
    /// [`AddressSpace::partition`] window so instances never alias.
    pub fn with_space(space: Arc<AddressSpace>) -> Self {
        let mut regions = CodeRegions::new();
        let er = EngineRegions::register(&mut regions);
        Database {
            catalog: Catalog::new(&space),
            cc: Box::new(Centralized2PL::new(&space, 64 * 1024)),
            lock_policy: LockPolicy::default(),
            wal: Wal::new(&space),
            heaps: Vec::new(),
            indexes: Vec::new(),
            index_table: Vec::new(),
            key_fns: Vec::new(),
            next_txn: 1,
            regions,
            er,
            space,
        }
    }

    /// The master code-region table (for building trace bundles).
    pub fn regions(&self) -> &CodeRegions {
        &self.regions
    }

    /// A fresh recording trace context for a client session.
    pub fn trace_ctx(&self) -> TraceCtx {
        TraceCtx::recording(self.er)
    }

    /// A counting-only context for native runs.
    pub fn null_ctx(&self) -> TraceCtx {
        TraceCtx::null(self.er)
    }

    /// Select the lock-conflict discipline (see [`LockPolicy`]).
    pub fn set_lock_policy(&mut self, policy: LockPolicy) {
        self.lock_policy = policy;
    }

    /// The active lock-conflict discipline.
    pub fn lock_policy(&self) -> LockPolicy {
        self.lock_policy
    }

    /// Select the concurrency-control backend (see [`CcBackend`]).
    ///
    /// Call before opening any transactions: switching backends builds a
    /// fresh lock table, abandoning in-flight lock state. Selecting the
    /// backend that is already active is a no-op, so the default
    /// [`CcBackend::Centralized2PL`] path allocates nothing new and stays
    /// byte-identical to pre-trait captures.
    pub fn set_cc_backend(&mut self, backend: CcBackend) {
        if backend == self.cc.backend() {
            return;
        }
        self.cc = match backend {
            CcBackend::Centralized2PL => Box::new(Centralized2PL::new(&self.space, 64 * 1024)),
            CcBackend::PartitionedPerCore => {
                // One partition per base-config core (the paper's 4-core
                // machines), carved from the same total bucket budget.
                Box::new(PartitionedPerCore::new(&self.space, 4, 64 * 1024))
            }
            CcBackend::DeterministicOrdered => {
                Box::new(DeterministicOrdered::new(&self.space, 64 * 1024))
            }
        };
    }

    /// The active concurrency-control backend.
    pub fn cc_backend(&self) -> CcBackend {
        self.cc.backend()
    }

    /// The backend's accumulated host-side counters.
    pub fn cc_stats(&self) -> CcStats {
        self.cc.stats()
    }

    /// Declare `txn`'s derived read/write set to the backend (a no-op for
    /// backends that do not pre-order). The ordered backend parks the
    /// caller with [`EngineError::LockWait`] until the whole set is
    /// granted in declare order; retry the call verbatim after a wake.
    pub fn declare(
        &mut self,
        txn: &Txn,
        keys: &[(u64, LockMode)],
        tc: &mut TraceCtx,
    ) -> Result<()> {
        self.cc.declare(txn.id, keys, tc)
    }

    /// Declare how many clients share this engine instance, turning on
    /// the lock-table contention surcharge: every lock acquire/release
    /// charges `LOCK_CONTEND · (sharers − 1)` extra lock-manager
    /// instructions — the CAS-retry/latch-backoff work that grows with
    /// the thread count contending on one lock table (the Shore-MT-style
    /// lock-manager bottleneck the Islands literature measures). The
    /// default (no call, or `sharers <= 1`) charges nothing, so existing
    /// captures are byte-identical.
    pub fn set_lock_sharers(&mut self, sharers: u32) {
        self.cc
            .set_contention(instr::LOCK_CONTEND * sharers.saturating_sub(1));
    }

    /// Transactions granted a queued lock (or chosen as deadlock victims)
    /// since the last call — the interleaved scheduler resumes them.
    pub fn drain_woken(&mut self) -> Vec<crate::txn::TxnId> {
        self.cc.drain_woken()
    }

    /// Live lock-table entries (diagnostics/tests).
    pub fn live_locks(&self) -> usize {
        self.cc.live_locks()
    }

    /// Transactions parked on lock wait queues (diagnostics/tests).
    pub fn lock_waiters(&self) -> usize {
        self.cc.waiting_count()
    }

    // ---- DDL ----

    /// Create a table with the given row layout.
    pub fn create_table(&mut self, name: &'static str, schema: Schema) -> TableId {
        let id = self.catalog.add_table(name);
        self.heaps.push(HeapTable::new(schema, &self.space, name));
        debug_assert_eq!(self.heaps.len() - 1, id);
        id
    }

    /// Create an index over `table` with `key_fn`; existing rows are
    /// indexed immediately.
    pub fn create_index(&mut self, table: TableId, key_fn: KeyFn) -> IndexId {
        let id = self.indexes.len();
        let mut tree = BTree::new(&self.space);
        let mut tc = self.null_ctx();
        let rids: Vec<Rid> = self.heaps[table].rids().collect();
        for rid in rids {
            if let Some(row) = self.heaps[table].read_at(rid, &mut tc) {
                let key = key_fn(&row, rid);
                tree.insert(key, rid.pack(), &self.space, &mut tc)
                    // lint:allow(panic): a duplicate key here means the caller's key_fn is wrong for this table — a programming error at schema-definition time, not a runtime condition
                    .expect("index build: duplicate key");
            }
        }
        self.indexes.push(tree);
        self.index_table.push(table);
        self.key_fns.push(key_fn);
        self.catalog.add_index(table, id);
        id
    }

    /// Traced catalog lookup by table name.
    pub fn table_id(&self, name: &str, tc: &mut TraceCtx) -> Option<TableId> {
        self.catalog.lookup(name, tc)
    }

    /// The heap behind a table handle.
    pub fn table(&self, id: TableId) -> &HeapTable {
        &self.heaps[id]
    }

    #[allow(clippy::should_implement_trait)] // accessor by id, not ops::Index
    /// The B+Tree behind an index handle.
    pub fn index(&self, id: IndexId) -> &BTree {
        &self.indexes[id]
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.heaps.len()
    }

    /// `(records, bytes)` appended to the WAL so far.
    pub fn wal_stats(&self) -> (u64, u64) {
        (self.wal.records(), self.wal.bytes_written())
    }

    // ---- Transactions ----

    /// Open a transaction (monotone id; traced begin bookkeeping).
    pub fn begin(&mut self, tc: &mut TraceCtx) -> Txn {
        tc.charge(tc.r.txn_mgr, instr::TXN_BEGIN);
        let id = self.next_txn;
        self.next_txn += 1;
        Txn::new(id)
    }

    /// Commit: WAL commit record + fence, then release every lock.
    pub fn commit(&mut self, mut txn: Txn, tc: &mut TraceCtx) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnClosed);
        }
        tc.charge(tc.r.txn_mgr, instr::TXN_COMMIT);
        self.wal.commit(tc);
        for (key, _) in txn.locks.drain(..) {
            self.cc.release(txn.id, key, tc);
        }
        self.cc.finish(txn.id, tc);
        txn.state = TxnState::Committed;
        Ok(())
    }

    /// Roll back: apply undo in reverse, then release locks.
    pub fn abort(&mut self, mut txn: Txn, tc: &mut TraceCtx) {
        tc.charge(
            tc.r.txn_mgr,
            instr::TXN_ABORT_BASE + instr::TXN_UNDO_PER_REC * txn.undo.len() as u32,
        );
        // Abort may arrive while the txn is queued on (or was granted but
        // never observed) a lock wait — clear that state first.
        self.cc.cancel_wait(txn.id, tc);
        let undo: Vec<UndoRec> = txn.undo.drain(..).rev().collect();
        for rec in undo {
            match rec {
                UndoRec::Insert {
                    table,
                    rid,
                    index_keys,
                } => {
                    for (idx, key) in index_keys {
                        self.indexes[idx].remove(key, tc);
                    }
                    let _ = self.heaps[table].delete(rid, tc);
                }
                UndoRec::Update { table, rid, before } => {
                    let _ = self.heaps[table].update_bytes(rid, &before, tc);
                }
                UndoRec::Delete {
                    table,
                    rid,
                    before,
                    index_keys,
                } => {
                    if self.heaps[table].restore_bytes(rid, &before, tc).is_ok() {
                        for (idx, key) in index_keys {
                            let _ = self.indexes[idx].insert(key, rid.pack(), &self.space, tc);
                        }
                    }
                }
            }
        }
        self.wal.append(WalRecord::Abort, tc);
        for (key, _) in txn.locks.drain(..) {
            self.cc.release(txn.id, key, tc);
        }
        self.cc.finish(txn.id, tc);
        txn.state = TxnState::Aborted;
    }

    /// Row-lock key: table discriminator in the high bits, RID below.
    /// Public so read/write-set derivation (`rwset` in `dbcmp-workloads`)
    /// can name the same keys the engine's own lock calls will use.
    pub fn lock_key(table: TableId, rid: Rid) -> u64 {
        ((table as u64) << 52) | rid.pack()
    }

    /// Lock-free row fetch for read/write-set derivation (`rwset` in
    /// `dbcmp-workloads`): returns the heap row without taking a lock or
    /// touching transaction state. Derivation runs under a null trace
    /// context, so these probes never enter captures; the values read are
    /// advisory (a concurrent writer may change them before the declared
    /// locks are granted — the ordered backend's no-wait fallback absorbs
    /// such misses).
    pub fn peek(&self, table: TableId, rid: Rid, tc: &mut TraceCtx) -> Result<Row> {
        self.heaps[table].get(rid, tc)
    }

    fn lock(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        mode: LockMode,
        tc: &mut TraceCtx,
    ) -> Result<()> {
        let key = Self::lock_key(table, rid);
        match self.lock_policy {
            LockPolicy::NoWait => {
                if self.cc.acquire(txn.id, key, mode, tc)? {
                    txn.locks.push((key, mode));
                }
            }
            LockPolicy::Queue => match self.cc.acquire_wait(txn.id, key, mode, tc)? {
                Grant::Acquired | Grant::WaitGranted => txn.locks.push((key, mode)),
                Grant::Held | Grant::WaitUpgraded => {}
                Grant::Wait => return Err(EngineError::LockWait { key }),
            },
        }
        Ok(())
    }

    // ---- DML (transactional) ----

    /// Insert a row: X-lock, WAL, heap, all indexes, undo record.
    pub fn insert(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<Rid> {
        if !txn.is_active() {
            return Err(EngineError::TxnClosed);
        }
        let rid = self.heaps[table].insert(row, &self.space, tc)?;
        // Undo record goes in *before* anything that can fail, so an abort
        // after a partial insert (lock conflict, duplicate index key)
        // removes the heap row and exactly the index entries added so far.
        txn.undo.push(UndoRec::Insert {
            table,
            rid,
            index_keys: Vec::new(),
        });
        // Fresh-RID locks conflict only if a deleter still holds the slot's
        // lock; never worth queueing on — no-wait regardless of policy.
        let key = Self::lock_key(table, rid);
        if self.cc.acquire(txn.id, key, LockMode::Exclusive, tc)? {
            txn.locks.push((key, LockMode::Exclusive));
        }
        let bytes = self.heaps[table].schema.row_width() as u32;
        self.wal.append(WalRecord::Insert { bytes }, tc);
        for &idx in &self.catalog.table(table).indexes {
            let ikey = (self.key_fns[idx])(row, rid);
            self.indexes[idx].insert(ikey, rid.pack(), &self.space, tc)?;
            if let Some(UndoRec::Insert { index_keys, .. }) = txn.undo.last_mut() {
                index_keys.push((idx, ikey));
            }
        }
        Ok(rid)
    }

    /// Read a row under an S (or X, `for_update`) lock.
    pub fn read(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        for_update: bool,
        tc: &mut TraceCtx,
    ) -> Result<Row> {
        if !txn.is_active() {
            return Err(EngineError::TxnClosed);
        }
        let mode = if for_update {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        self.lock(txn, table, rid, mode, tc)?;
        self.heaps[table].get(rid, tc)
    }

    /// Update a row in place (X lock, before-image undo, WAL).
    pub fn update(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        row: &[Value],
        tc: &mut TraceCtx,
    ) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnClosed);
        }
        self.lock(txn, table, rid, LockMode::Exclusive, tc)?;
        let before = self.heaps[table].get_bytes(rid, tc)?;
        self.wal.append(
            WalRecord::Update {
                bytes: before.len() as u32,
            },
            tc,
        );
        self.heaps[table].update(rid, row, tc)?;
        txn.undo.push(UndoRec::Update { table, rid, before });
        Ok(())
    }

    /// Delete a row (X lock, image + index-key undo, WAL).
    pub fn delete(
        &mut self,
        txn: &mut Txn,
        table: TableId,
        rid: Rid,
        tc: &mut TraceCtx,
    ) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnClosed);
        }
        self.lock(txn, table, rid, LockMode::Exclusive, tc)?;
        let before = self.heaps[table].get_bytes(rid, tc)?;
        let row = self.heaps[table].get(rid, tc)?;
        let mut index_keys = Vec::new();
        for &idx in &self.catalog.table(table).indexes {
            let key = (self.key_fns[idx])(&row, rid);
            self.indexes[idx].remove(key, tc);
            index_keys.push((idx, key));
        }
        self.wal.append(
            WalRecord::Delete {
                bytes: before.len() as u32,
            },
            tc,
        );
        self.heaps[table].delete(rid, tc)?;
        txn.undo.push(UndoRec::Delete {
            table,
            rid,
            before,
            index_keys,
        });
        Ok(())
    }

    // ---- Index access ----

    /// Point lookup through an index.
    pub fn index_get(&self, index: IndexId, key: u64, tc: &mut TraceCtx) -> Option<Rid> {
        self.indexes[index].get(key, tc).map(Rid::unpack)
    }

    /// Inclusive range through an index.
    pub fn index_range(
        &self,
        index: IndexId,
        lo: u64,
        hi: u64,
        tc: &mut TraceCtx,
    ) -> Vec<(u64, Rid)> {
        self.indexes[index]
            .range(lo, hi, tc)
            .into_iter()
            .map(|(k, v)| (k, Rid::unpack(v)))
            .collect()
    }

    /// Open a cursor on an index (executor use).
    pub fn index_cursor(&self, index: IndexId, lo: u64, hi: u64, tc: &mut TraceCtx) -> Cursor {
        self.indexes[index].cursor(lo, hi, tc)
    }

    /// Advance an index cursor, returning the next `(key, rid)`.
    pub fn index_cursor_next(
        &self,
        index: IndexId,
        cur: &mut Cursor,
        tc: &mut TraceCtx,
    ) -> Option<(u64, Rid)> {
        self.indexes[index]
            .cursor_next(cur, tc)
            .map(|(k, v)| (k, Rid::unpack(v)))
    }

    /// Table of an index.
    pub fn index_table(&self, index: IndexId) -> TableId {
        self.index_table[index]
    }

    /// Statement entry point: the client/session layer cost (dispatch,
    /// plan-cache lookup) charged once per statement.
    pub fn statement_overhead(&self, tc: &mut TraceCtx) {
        tc.charge(tc.r.client, instr::CLIENT_DISPATCH);
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::inconsistent_digit_grouping)] // money literals: dollars_cents
mod tests {
    use super::*;
    use crate::types::ColType;

    fn accounts_db() -> (Database, TableId, IndexId) {
        let mut db = Database::new();
        let t = db.create_table(
            "accounts",
            Schema::new(vec![("id", ColType::Int), ("balance", ColType::Decimal)]),
        );
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        (db, t, idx)
    }

    #[test]
    fn insert_commit_read_back() {
        let (mut db, t, idx) = accounts_db();
        let mut tc = db.null_ctx();
        let mut txn = db.begin(&mut tc);
        let rid = db
            .insert(
                &mut txn,
                t,
                &[Value::Int(1), Value::Decimal(100_00)],
                &mut tc,
            )
            .unwrap();
        db.commit(txn, &mut tc).unwrap();

        let found = db.index_get(idx, 1, &mut tc).unwrap();
        assert_eq!(found, rid);
        let mut txn2 = db.begin(&mut tc);
        let row = db.read(&mut txn2, t, rid, false, &mut tc).unwrap();
        assert_eq!(row, vec![Value::Int(1), Value::Decimal(100_00)]);
        db.commit(txn2, &mut tc).unwrap();
    }

    #[test]
    fn abort_rolls_back_insert_update_delete() {
        let (mut db, t, idx) = accounts_db();
        let mut tc = db.null_ctx();

        // Committed base row.
        let mut setup = db.begin(&mut tc);
        let rid = db
            .insert(
                &mut setup,
                t,
                &[Value::Int(1), Value::Decimal(500)],
                &mut tc,
            )
            .unwrap();
        db.commit(setup, &mut tc).unwrap();

        // A txn that inserts, updates the base row, deletes it — then aborts.
        let mut txn = db.begin(&mut tc);
        db.insert(&mut txn, t, &[Value::Int(2), Value::Decimal(7)], &mut tc)
            .unwrap();
        db.update(
            &mut txn,
            t,
            rid,
            &[Value::Int(1), Value::Decimal(999)],
            &mut tc,
        )
        .unwrap();
        db.delete(&mut txn, t, rid, &mut tc).unwrap();
        db.abort(txn, &mut tc);

        // Base row restored (possibly at a new RID via the index).
        let rid_after = db.index_get(idx, 1, &mut tc).expect("row must be back");
        let mut check = db.begin(&mut tc);
        let row = db.read(&mut check, t, rid_after, false, &mut tc).unwrap();
        assert_eq!(row, vec![Value::Int(1), Value::Decimal(500)]);
        db.commit(check, &mut tc).unwrap();
        // Inserted row is gone.
        assert!(db.index_get(idx, 2, &mut tc).is_none());
        assert_eq!(db.table(t).n_rows(), 1);
    }

    #[test]
    fn two_pl_conflict_surfaces() {
        let (mut db, t, _) = accounts_db();
        let mut tc = db.null_ctx();
        let mut setup = db.begin(&mut tc);
        let rid = db
            .insert(&mut setup, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        db.commit(setup, &mut tc).unwrap();

        let mut a = db.begin(&mut tc);
        let mut b = db.begin(&mut tc);
        db.read(&mut a, t, rid, true, &mut tc).unwrap(); // A holds X
        let r = db.read(&mut b, t, rid, false, &mut tc); // B wants S
        assert!(matches!(r, Err(EngineError::LockConflict { .. })));
        db.abort(b, &mut tc);
        db.commit(a, &mut tc).unwrap();

        // After A commits, a new txn succeeds.
        let mut c = db.begin(&mut tc);
        assert!(db.read(&mut c, t, rid, false, &mut tc).is_ok());
        db.commit(c, &mut tc).unwrap();
    }

    #[test]
    fn queued_conflict_waits_then_grants() {
        let (mut db, t, _) = accounts_db();
        db.set_lock_policy(LockPolicy::Queue);
        let mut tc = db.null_ctx();
        let mut setup = db.begin(&mut tc);
        let rid = db
            .insert(&mut setup, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        db.commit(setup, &mut tc).unwrap();

        let mut a = db.begin(&mut tc);
        let mut b = db.begin(&mut tc);
        db.read(&mut a, t, rid, true, &mut tc).unwrap(); // A holds X
        let r = db.read(&mut b, t, rid, false, &mut tc); // B parks
        assert!(matches!(r, Err(EngineError::LockWait { .. })));
        assert_eq!(db.lock_waiters(), 1);

        db.commit(a, &mut tc).unwrap();
        assert_eq!(db.drain_woken(), vec![b.id]);
        // B's retry of the same read now succeeds.
        assert!(db.read(&mut b, t, rid, false, &mut tc).is_ok());
        db.commit(b, &mut tc).unwrap();
        assert_eq!(db.live_locks(), 0);
    }

    /// The guaranteed two-client cycle: A locks k1 then wants k2, B locks
    /// k2 then wants k1. Exactly one victim (the youngest, B) aborts, the
    /// survivor commits, and the lock table drains.
    #[test]
    fn two_client_cycle_resolves_with_one_victim() {
        let (mut db, t, _) = accounts_db();
        db.set_lock_policy(LockPolicy::Queue);
        let mut tc = db.null_ctx();
        let mut setup = db.begin(&mut tc);
        let k1 = db
            .insert(&mut setup, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        let k2 = db
            .insert(&mut setup, t, &[Value::Int(2), Value::Decimal(0)], &mut tc)
            .unwrap();
        db.commit(setup, &mut tc).unwrap();

        let mut a = db.begin(&mut tc);
        let mut b = db.begin(&mut tc);
        db.read(&mut a, t, k1, true, &mut tc).unwrap(); // A: X(k1)
        db.read(&mut b, t, k2, true, &mut tc).unwrap(); // B: X(k2)
        assert!(matches!(
            db.read(&mut a, t, k2, true, &mut tc), // A parks on k2
            Err(EngineError::LockWait { .. })
        ));
        // B closes the cycle; B is youngest → immediate victim.
        let r = db.read(&mut b, t, k1, true, &mut tc);
        assert!(matches!(r, Err(EngineError::Deadlock { .. })));
        db.abort(b, &mut tc);

        // The survivor was granted k2 by the abort and commits.
        assert_eq!(db.drain_woken(), vec![a.id]);
        db.read(&mut a, t, k2, true, &mut tc).unwrap();
        db.commit(a, &mut tc).unwrap();
        assert_eq!(db.live_locks(), 0, "lock table must drain");
        assert_eq!(db.lock_waiters(), 0);
    }

    /// Same cycle, opposite closing order: the victim is the *parked*
    /// younger transaction, which learns of its fate on its retry.
    #[test]
    fn parked_younger_txn_is_the_victim() {
        let (mut db, t, _) = accounts_db();
        db.set_lock_policy(LockPolicy::Queue);
        let mut tc = db.null_ctx();
        let mut setup = db.begin(&mut tc);
        let k1 = db
            .insert(&mut setup, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        let k2 = db
            .insert(&mut setup, t, &[Value::Int(2), Value::Decimal(0)], &mut tc)
            .unwrap();
        db.commit(setup, &mut tc).unwrap();

        let mut a = db.begin(&mut tc); // older
        let mut b = db.begin(&mut tc); // younger
        db.read(&mut a, t, k1, true, &mut tc).unwrap();
        db.read(&mut b, t, k2, true, &mut tc).unwrap();
        // Younger B parks first.
        assert!(matches!(
            db.read(&mut b, t, k1, true, &mut tc),
            Err(EngineError::LockWait { .. })
        ));
        // Older A closes the cycle: A parks, B is chosen victim and woken.
        assert!(matches!(
            db.read(&mut a, t, k2, true, &mut tc),
            Err(EngineError::LockWait { .. })
        ));
        assert_eq!(db.drain_woken(), vec![b.id]);
        assert!(matches!(
            db.read(&mut b, t, k1, true, &mut tc),
            Err(EngineError::Deadlock { .. })
        ));
        db.abort(b, &mut tc);
        assert_eq!(db.drain_woken(), vec![a.id]);
        db.read(&mut a, t, k2, true, &mut tc).unwrap();
        db.commit(a, &mut tc).unwrap();
        assert_eq!(db.live_locks(), 0);
    }

    #[test]
    fn closed_txn_rejected() {
        let (mut db, t, _) = accounts_db();
        let mut tc = db.null_ctx();
        let mut txn = db.begin(&mut tc);
        let rid = db
            .insert(&mut txn, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        txn.state = TxnState::Committed; // simulate misuse
        assert!(matches!(
            db.read(&mut txn, t, rid, false, &mut tc),
            Err(EngineError::TxnClosed)
        ));
    }

    #[test]
    fn index_range_after_inserts() {
        let (mut db, t, idx) = accounts_db();
        let mut tc = db.null_ctx();
        let mut txn = db.begin(&mut tc);
        for i in 0..100 {
            db.insert(
                &mut txn,
                t,
                &[Value::Int(i), Value::Decimal(i * 10)],
                &mut tc,
            )
            .unwrap();
        }
        db.commit(txn, &mut tc).unwrap();
        let r = db.index_range(idx, 10, 19, &mut tc);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, 10);
        assert_eq!(r[9].0, 19);
    }

    #[test]
    fn wal_accumulates() {
        let (mut db, t, _) = accounts_db();
        let mut tc = db.null_ctx();
        let mut txn = db.begin(&mut tc);
        db.insert(&mut txn, t, &[Value::Int(1), Value::Decimal(0)], &mut tc)
            .unwrap();
        db.commit(txn, &mut tc).unwrap();
        let (records, bytes) = db.wal_stats();
        assert_eq!(records, 2); // insert + commit
        assert!(bytes > 0);
    }
}
