//! Transactions: 2PL lock ownership + undo records.
//!
//! The [`Txn`] handle accumulates the locks it holds and the undo records
//! needed to roll back. The [`Database`](crate::db::Database) applies undo
//! in reverse order on abort and releases all locks at commit/abort
//! (strict two-phase locking).

use crate::heap::Rid;
use crate::lockmgr::LockMode;

/// Transaction identifier.
pub type TxnId = u64;

/// How to reverse one statement.
#[derive(Debug, Clone)]
pub enum UndoRec {
    /// Reverse an insert: delete the row and the index entries it added.
    Insert {
        /// Table the row was inserted into.
        table: usize,
        /// Row id assigned at insert.
        rid: Rid,
        /// `(index, key)` pairs to remove.
        index_keys: Vec<(usize, u64)>,
    },
    /// Reverse an update: restore the before-image.
    Update {
        /// Table holding the row.
        table: usize,
        /// Row id of the updated row.
        rid: Rid,
        /// Encoded row image before the update.
        before: Vec<u8>,
    },
    /// Reverse a delete: restore the image at its original RID and
    /// re-add its index entries.
    Delete {
        /// Table the row was deleted from.
        table: usize,
        /// Row id the row occupied.
        rid: Rid,
        /// Encoded row image before the delete.
        before: Vec<u8>,
        /// `(index, key)` pairs to restore.
        index_keys: Vec<(usize, u64)>,
    },
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Open and executing statements.
    Active,
    /// Successfully committed (locks released).
    Committed,
    /// Rolled back (undo applied, locks released).
    Aborted,
}

/// A transaction handle. Created by `Database::begin`, consumed by
/// `Database::commit` / `Database::abort`.
#[derive(Debug)]
pub struct Txn {
    /// Monotonic transaction id (also the deadlock-victim age order).
    pub id: TxnId,
    pub(crate) locks: Vec<(u64, LockMode)>,
    pub(crate) undo: Vec<UndoRec>,
    /// Current lifecycle state.
    pub state: TxnState,
}

impl Txn {
    pub(crate) fn new(id: TxnId) -> Self {
        Txn {
            id,
            locks: Vec::new(),
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    /// Whether the transaction is still open.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Locks currently held (diagnostics).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// The `(lock_key, mode)` pairs this transaction recorded, in
    /// acquisition order — ground truth for the read/write-set coverage
    /// tests in `dbcmp-workloads`. Upgrades do not re-record a key, so a
    /// pair may understate the final mode (never the key set).
    pub fn held_locks(&self) -> &[(u64, LockMode)] {
        &self.locks
    }

    /// Undo records accumulated (diagnostics).
    pub fn undo_count(&self) -> usize {
        self.undo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_txn_is_active_and_empty() {
        let t = Txn::new(7);
        assert!(t.is_active());
        assert_eq!(t.lock_count(), 0);
        assert_eq!(t.undo_count(), 0);
    }
}
