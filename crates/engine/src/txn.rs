//! Transactions: 2PL lock ownership + undo records.
//!
//! The [`Txn`] handle accumulates the locks it holds and the undo records
//! needed to roll back. The [`Database`](crate::db::Database) applies undo
//! in reverse order on abort and releases all locks at commit/abort
//! (strict two-phase locking).

use crate::heap::Rid;
use crate::lockmgr::LockMode;

/// Transaction identifier.
pub type TxnId = u64;

/// How to reverse one statement.
#[derive(Debug, Clone)]
pub enum UndoRec {
    /// Reverse an insert: delete the row and the index entries it added.
    Insert {
        table: usize,
        rid: Rid,
        index_keys: Vec<(usize, u64)>,
    },
    /// Reverse an update: restore the before-image.
    Update {
        table: usize,
        rid: Rid,
        before: Vec<u8>,
    },
    /// Reverse a delete: restore the image at its original RID and
    /// re-add its index entries.
    Delete {
        table: usize,
        rid: Rid,
        before: Vec<u8>,
        index_keys: Vec<(usize, u64)>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// A transaction handle. Created by `Database::begin`, consumed by
/// `Database::commit` / `Database::abort`.
#[derive(Debug)]
pub struct Txn {
    pub id: TxnId,
    pub(crate) locks: Vec<(u64, LockMode)>,
    pub(crate) undo: Vec<UndoRec>,
    pub state: TxnState,
}

impl Txn {
    pub(crate) fn new(id: TxnId) -> Self {
        Txn {
            id,
            locks: Vec::new(),
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Locks currently held (diagnostics).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Undo records accumulated (diagnostics).
    pub fn undo_count(&self) -> usize {
        self.undo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_txn_is_active_and_empty() {
        let t = Txn::new(7);
        assert!(t.is_active());
        assert_eq!(t.lock_count(), 0);
        assert_eq!(t.undo_count(), 0);
    }
}
