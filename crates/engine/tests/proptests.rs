//! Property tests for the engine: slotted pages against a map model, the
//! lock manager's 2PL invariants, and transactional abort as the exact
//! inverse of any statement sequence.

// Model maps here are read by key lookup only; rule D1 governs shipped
// capture-path code, not tests (the custom lint skips test scopes).
#![allow(clippy::disallowed_types)]

use dbcmp_engine::lockmgr::{LockMgr, LockMode};
use dbcmp_engine::page::{SlottedPage, PAGE_SIZE};
use dbcmp_engine::{ColType, Database, EngineRegions, Schema, TraceCtx, Value};
use dbcmp_trace::{AddressSpace, CodeRegions};
use proptest::prelude::*;
use std::collections::HashMap;

fn tc() -> TraceCtx {
    let mut r = CodeRegions::new();
    let er = EngineRegions::register(&mut r);
    TraceCtx::null(er)
}

proptest! {
    // Deterministic in CI: the vendored proptest seeds each property's RNG
    // from the test's fully-qualified name; this bounds the case count.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A slotted page behaves like a map from slot id to byte image under
    /// arbitrary insert/update/delete/compact interleavings.
    #[test]
    fn page_matches_map_model(
        ops in prop::collection::vec((0u8..4, 1usize..300, any::<u8>()), 1..120)
    ) {
        let mut tcx = tc();
        let mut page = SlottedPage::new(0x4000);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut next_slot = 0u16;
        for (op, len, fill) in ops {
            match op {
                0 => {
                    let bytes = vec![fill; len];
                    if page.fits(len) {
                        let slot = page.insert(&bytes, &mut tcx).unwrap();
                        prop_assert_eq!(slot, next_slot);
                        model.insert(slot, bytes);
                        next_slot += 1;
                    }
                }
                1 if next_slot > 0 => {
                    let slot = (fill as u16) % next_slot;
                    if let Some(old) = model.get(&slot) {
                        // In-place update must not grow.
                        let n = len.min(old.len());
                        let bytes = vec![fill ^ 0xFF; n.max(1).min(old.len().max(1))];
                        if !old.is_empty() && bytes.len() <= old.len() {
                            page.update(slot, &bytes, &mut tcx).unwrap();
                            model.insert(slot, bytes);
                        }
                    }
                }
                2 if next_slot > 0 => {
                    let slot = (fill as u16) % next_slot;
                    let in_model = model.remove(&slot).is_some();
                    prop_assert_eq!(page.delete(slot, &mut tcx).is_ok(), in_model);
                }
                _ => page.compact(),
            }
            // Full agreement after every step.
            for s in 0..next_slot {
                let got = page.get(s, &mut tcx).map(<[u8]>::to_vec);
                prop_assert_eq!(&got, &model.get(&s).cloned(), "slot {} diverged", s);
            }
            prop_assert_eq!(page.live(), model.len());
            prop_assert!(page.free_space() <= PAGE_SIZE);
        }
    }

    /// 2PL invariants: at most one exclusive holder per key; shared and
    /// exclusive never coexist; releases leave no residue.
    #[test]
    fn lockmgr_invariants(
        ops in prop::collection::vec((1u64..6, 0u64..12, any::<bool>()), 1..200)
    ) {
        let space = AddressSpace::new();
        let mut lm = LockMgr::new(&space, 64);
        let mut tcx = tc();
        // model: key -> (mode, holders)
        let mut model: HashMap<u64, (LockMode, Vec<u64>)> = HashMap::new();
        for (txn, key, exclusive) in ops {
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let res = lm.acquire(txn, key, mode, &mut tcx);
            match model.get_mut(&key) {
                None => {
                    prop_assert!(res.is_ok());
                    model.insert(key, (mode, vec![txn]));
                }
                Some((m, holders)) => {
                    let holds = holders.contains(&txn);
                    let expect_ok = match (mode, *m) {
                        (_, LockMode::Exclusive) => holds,
                        (LockMode::Shared, LockMode::Shared) => true,
                        (LockMode::Exclusive, LockMode::Shared) => holds && holders.len() == 1,
                    };
                    prop_assert_eq!(res.is_ok(), expect_ok, "key {} txn {}", key, txn);
                    if expect_ok {
                        if mode == LockMode::Exclusive {
                            *m = LockMode::Exclusive;
                        }
                        if !holds && res.unwrap() {
                            holders.push(txn);
                        }
                    }
                }
            }
        }
        // Release everything; the table must drain completely.
        for (key, (_, holders)) in model {
            for txn in holders {
                lm.release(txn, key, &mut tcx);
            }
        }
        prop_assert_eq!(lm.live_locks(), 0, "locks must not leak");
    }

    /// Abort undoes any prefix of inserts/updates/deletes exactly: the
    /// visible table state equals the pre-transaction snapshot.
    #[test]
    fn abort_is_exact_inverse(
        ops in prop::collection::vec((0u8..3, 0u64..20, -500i64..500), 1..60)
    ) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![("k", ColType::Int), ("v", ColType::Int)]),
        );
        let idx = db.create_index(t, Box::new(|row, _| row[0].as_i64().unwrap() as u64));
        let mut tcx = db.null_ctx();

        // Committed baseline: keys 0..10.
        let mut setup = db.begin(&mut tcx);
        for k in 0..10i64 {
            db.insert(&mut setup, t, &[Value::Int(k), Value::Int(k * 10)], &mut tcx).unwrap();
        }
        db.commit(setup, &mut tcx).unwrap();

        let snapshot = |db: &mut Database, tcx: &mut TraceCtx| -> Vec<(u64, Vec<Value>)> {
            let pairs = db.index_range(idx, 0, u64::MAX, tcx);
            pairs
                .into_iter()
                .map(|(k, rid)| (k, db.table(t).get(rid, tcx).unwrap()))
                .collect()
        };
        let before = snapshot(&mut db, &mut tcx);

        // A txn doing arbitrary things, then aborting.
        let mut txn = db.begin(&mut tcx);
        for (op, key, v) in ops {
            match op {
                0 => {
                    // Insert a fresh key (conflict-free by construction).
                    let k = 100 + key as i64;
                    if db.index_get(idx, k as u64, &mut tcx).is_none() {
                        db.insert(&mut txn, t, &[Value::Int(k), Value::Int(v)], &mut tcx)
                            .unwrap();
                    }
                }
                1 => {
                    if let Some(rid) = db.index_get(idx, key % 10, &mut tcx) {
                        db.update(
                            &mut txn,
                            t,
                            rid,
                            &[Value::Int((key % 10) as i64), Value::Int(v)],
                            &mut tcx,
                        )
                        .unwrap();
                    }
                }
                _ => {
                    if let Some(rid) = db.index_get(idx, key % 10, &mut tcx) {
                        // May already be deleted in this txn.
                        let _ = db.delete(&mut txn, t, rid, &mut tcx);
                    }
                }
            }
        }
        db.abort(txn, &mut tcx);

        let after = snapshot(&mut db, &mut tcx);
        prop_assert_eq!(before, after, "abort must restore the exact snapshot");
    }
}
