//! Property tests for the wait-queue lock manager (ISSUE 2).
//!
//! A miniature round-robin scheduler (mirroring the interleaved capture's
//! baton protocol) drives random per-transaction acquisition scripts
//! through [`LockMgr::acquire_wait`] and checks, after every step:
//!
//! * at most one exclusive holder per key, and shared/exclusive never
//!   coexist (the 2PL compatibility matrix);
//! * the waits-for graph is acyclic — every cycle is resolved inside the
//!   acquire that would create it;
//! * every blocked transaction is eventually granted or deadlock-aborted
//!   (the run terminates with all scripts finished);
//! * the lock table and wait queues drain completely at the end.

use std::collections::BTreeMap;

use dbcmp_engine::cc::{Centralized2PL, DeterministicOrdered, PartitionedPerCore};
use dbcmp_engine::lockmgr::{Grant, LockMgr, LockMode};
use dbcmp_engine::{CcBackend, ConcurrencyControl, EngineError, EngineRegions, TraceCtx};
use dbcmp_trace::{AddressSpace, CodeRegions};
use proptest::prelude::*;

fn tc() -> TraceCtx {
    let mut r = CodeRegions::new();
    let er = EngineRegions::register(&mut r);
    TraceCtx::null(er)
}

/// One transaction's script: keys to acquire, in order.
type Script = Vec<(u64, bool)>;

/// A backend-harness script step: `(key, exclusive, late)`. `late` keys
/// are left out of the ordered backend's declaration, exercising its
/// no-wait fallback path (the other backends ignore the flag).
type CcScript = Vec<(u64, bool, bool)>;

fn make_backend(b: CcBackend, space: &AddressSpace) -> Box<dyn ConcurrencyControl> {
    match b {
        CcBackend::Centralized2PL => Box::new(Centralized2PL::new(space, 64)),
        CcBackend::PartitionedPerCore => Box::new(PartitionedPerCore::new(space, 4, 256)),
        CcBackend::DeterministicOrdered => Box::new(DeterministicOrdered::new(space, 64)),
    }
}

/// Record that `txn` now holds `key` (upgrading S to X if re-recorded
/// exclusive) in the host-side holder ledger.
fn record(ledger: &mut BTreeMap<u64, Vec<(usize, bool)>>, key: u64, txn: usize, excl: bool) {
    let holders = ledger.entry(key).or_default();
    match holders.iter_mut().find(|h| h.0 == txn) {
        Some(h) => h.1 |= excl,
        None => holders.push((txn, excl)),
    }
}

/// Drive the same random scripts through one backend behind the
/// [`ConcurrencyControl`] trait with the mini round-robin scheduler and
/// check, after every step: the 2PL compatibility matrix on a host-side
/// holder ledger, acyclicity (`has_deadlock` must never fire for the
/// deadlock-free backends), bounded termination, and a fully drained
/// table at the end.
fn run_backend_scripts(backend: CcBackend, scripts: &[CcScript]) {
    let n = scripts.len();
    let space = AddressSpace::new();
    let mut cc = make_backend(backend, &space);
    let mut tcx = tc();
    let ordered = backend == CcBackend::DeterministicOrdered;
    let id = |i: usize| (i + 1) as u64;
    let mode = |x: bool| {
        if x {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    };

    // Ordered transactions declare their non-late keys before running.
    let mut declared = vec![!ordered; n];
    let mut pc = vec![0usize; n];
    let mut state = vec![St::Ready; n];
    // Freshly granted keys each txn must release itself (txn.locks).
    let mut fresh: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut ledger: BTreeMap<u64, Vec<(usize, bool)>> = BTreeMap::new();

    let mut turns = 0u64;
    let mut rr = 0usize;
    while state.iter().any(|&s| s != St::Done) {
        turns += 1;
        prop_assert!(
            turns < 20_000,
            "{backend:?}: scheduler failed to make progress"
        );
        let Some(i) = (0..n)
            .map(|k| (rr + k) % n)
            .find(|&k| state[k] == St::Ready)
        else {
            panic!("{backend:?}: all live txns blocked: undetected deadlock");
        };
        rr = (i + 1) % n;

        // Abort path shared by deadlock victims and no-wait refusals.
        macro_rules! abort {
            () => {{
                cc.cancel_wait(id(i), &mut tcx);
                for key in fresh[i].drain(..) {
                    cc.release(id(i), key, &mut tcx);
                }
                cc.finish(id(i), &mut tcx);
                ledger.values_mut().for_each(|v| v.retain(|&(t, _)| t != i));
                state[i] = St::Done;
            }};
        }

        if !declared[i] {
            let keys: Vec<(u64, LockMode)> = scripts[i]
                .iter()
                .filter(|&&(_, _, late)| !late)
                .map(|&(k, x, _)| (k, mode(x)))
                .collect();
            match cc.declare(id(i), &keys, &mut tcx) {
                Ok(()) => declared[i] = true,
                Err(EngineError::LockWait { .. }) => state[i] = St::Blocked,
                Err(e) => panic!("{backend:?}: unexpected declare error: {e}"),
            }
        } else if pc[i] >= scripts[i].len() {
            for key in fresh[i].drain(..) {
                cc.release(id(i), key, &mut tcx);
            }
            cc.finish(id(i), &mut tcx);
            ledger.values_mut().for_each(|v| v.retain(|&(t, _)| t != i));
            state[i] = St::Done;
        } else {
            let (key, excl, _late) = scripts[i][pc[i]];
            match cc.acquire_wait(id(i), key, mode(excl), &mut tcx) {
                Ok(Grant::Acquired | Grant::WaitGranted) => {
                    fresh[i].push(key);
                    record(&mut ledger, key, i, excl);
                    pc[i] += 1;
                }
                Ok(Grant::Held | Grant::WaitUpgraded) => {
                    record(&mut ledger, key, i, excl);
                    pc[i] += 1;
                }
                Ok(Grant::Wait) => state[i] = St::Blocked,
                Err(EngineError::Deadlock { .. }) => {
                    prop_assert!(
                        backend == CcBackend::Centralized2PL,
                        "{backend:?} must be structurally deadlock-free"
                    );
                    abort!();
                }
                Err(EngineError::LockConflict { .. }) => {
                    // A discipline-enforced no-wait refusal (out-of-order
                    // partitioned request, ordered derivation miss): the
                    // capture layer aborts and retries; here the unit is
                    // simply given up.
                    abort!();
                }
                Err(e) => panic!("{backend:?}: unexpected engine error: {e}"),
            }
        }

        for t in cc.drain_woken() {
            let k = (t - 1) as usize;
            if state[k] == St::Blocked {
                state[k] = St::Ready;
            }
        }

        // Compatibility matrix over everything the backend has granted:
        // at most one exclusive holder, and S never coexists with X.
        // (The ledger may *undercount* ordered declare-granted locks the
        // transaction has not touched yet — that only weakens the check,
        // never falsely trips it.)
        for (key, holders) in &ledger {
            let x = holders.iter().filter(|h| h.1).count();
            prop_assert!(x <= 1, "{backend:?}: key {key}: {x} exclusive holders");
            if x == 1 {
                prop_assert_eq!(
                    holders.len(),
                    1,
                    "{:?}: key {}: S and X coexist: {:?}",
                    backend,
                    key,
                    holders
                );
            }
        }
        prop_assert!(
            !cc.has_deadlock(),
            "{backend:?}: waits-for cycle survived a step: {:?}",
            cc.wait_graph()
        );
        if backend != CcBackend::Centralized2PL {
            prop_assert_eq!(
                cc.stats().deadlocks,
                0,
                "{:?} handed out a deadlock-victim notification",
                backend
            );
        }
    }

    prop_assert_eq!(cc.live_locks(), 0, "{:?}: lock state must drain", backend);
    prop_assert_eq!(cc.waiting_count(), 0, "{:?}: waiters must drain", backend);
    prop_assert!(cc.drain_woken().is_empty(), "{backend:?}: stale wakes");
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// May attempt its next acquisition.
    Ready,
    /// Parked on a wait queue until woken.
    Blocked,
    /// Committed or deadlock-aborted; locks released.
    Done,
}

/// 2PL compatibility matrix + structural sanity over the live lock table.
fn assert_table_invariants(lm: &LockMgr) {
    for (key, mode, holders, _waiters) in lm.snapshot() {
        prop_assert!(
            !holders.is_empty() || lm.waiting_count() > 0,
            "key {key}: empty entry must not linger"
        );
        if mode == LockMode::Exclusive {
            prop_assert!(
                holders.len() <= 1,
                "key {key}: {} exclusive holders",
                holders.len()
            );
        }
        let mut uniq = holders.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), holders.len(), "key {}: duplicate holder", key);
    }
    prop_assert!(
        !lm.has_deadlock(),
        "waits-for graph must be acyclic after each step: {:?}",
        lm.wait_graph()
    );
}

proptest! {
    // Deterministic in CI: the vendored proptest seeds each property's RNG
    // from the test's fully-qualified name; this bounds the case count.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random acquisition scripts under round-robin scheduling: the
    /// compatibility matrix holds, cycles never survive a step, everything
    /// terminates, and the table drains.
    #[test]
    fn queued_lockmgr_invariants(
        scripts in prop::collection::vec(
            prop::collection::vec((0u64..6, any::<bool>()), 1..8),
            2..6,
        )
    ) {
        let scripts: Vec<Script> = scripts;
        let n = scripts.len();
        let space = AddressSpace::new();
        let mut lm = LockMgr::new(&space, 64);
        let mut tcx = tc();

        // Transaction i has id i+1 (ids grow with begin order; the victim
        // rule aborts the largest id on a cycle).
        let id = |i: usize| (i + 1) as u64;
        let mut pc = vec![0usize; n];
        let mut state = vec![St::Ready; n];
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut blocked_ever = 0u64;
        let mut resolved = 0u64;

        let mut turns = 0u64;
        let mut rr = 0usize;
        while state.iter().any(|&s| s != St::Done) {
            turns += 1;
            // Progress property: bounded termination. Generous cap — every
            // script is ≤ 8 ops and every turn retries at most one op.
            prop_assert!(turns < 10_000, "scheduler failed to make progress");
            let Some(i) = (0..n).map(|k| (rr + k) % n).find(|&k| state[k] == St::Ready) else {
                panic!("all live txns blocked: undetected deadlock");
            };
            rr = (i + 1) % n;

            if pc[i] >= scripts[i].len() {
                // Commit: release everything.
                for key in held[i].drain(..) {
                    lm.release(id(i), key, &mut tcx);
                }
                state[i] = St::Done;
            } else {
                let (key, exclusive) = scripts[i][pc[i]];
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                match lm.acquire_wait(id(i), key, mode, &mut tcx) {
                    Ok(Grant::Acquired | Grant::WaitGranted) => {
                        held[i].push(key);
                        pc[i] += 1;
                    }
                    Ok(Grant::Held | Grant::WaitUpgraded) => pc[i] += 1,
                    Ok(Grant::Wait) => {
                        blocked_ever += 1;
                        state[i] = St::Blocked;
                    }
                    Err(EngineError::Deadlock { .. }) => {
                        // Victim: abort — cancel any queue residue, release
                        // held locks, finish.
                        resolved += 1;
                        lm.cancel_wait(id(i), &mut tcx);
                        for key in held[i].drain(..) {
                            lm.release(id(i), key, &mut tcx);
                        }
                        state[i] = St::Done;
                    }
                    Err(e) => panic!("unexpected engine error: {e}"),
                }
            }

            // Wake notifications resume blocked txns (grant or victim).
            for t in lm.drain_woken() {
                let k = (t - 1) as usize;
                if state[k] == St::Blocked {
                    state[k] = St::Ready;
                }
            }
            assert_table_invariants(&lm);
        }

        // Every blocked txn was eventually granted or deadlock-aborted —
        // termination proves it; the table must also have drained.
        prop_assert_eq!(lm.live_locks(), 0, "lock table must drain");
        prop_assert_eq!(lm.waiting_count(), 0, "wait queues must drain");
        prop_assert!(lm.drain_woken().is_empty(), "no stale wake notifications");
        // Keep the counters observable for shrunk-case debugging.
        let _ = (blocked_ever, resolved);
    }

    /// No-wait and queued acquires agree on the grant/held outcomes when
    /// no waiting is involved (single live transaction at a time).
    #[test]
    fn nowait_and_queued_agree_without_contention(
        ops in prop::collection::vec((0u64..8, any::<bool>()), 1..20)
    ) {
        let space = AddressSpace::new();
        let mut nw = LockMgr::new(&space, 64);
        let mut qd = LockMgr::new(&space, 64);
        let mut tcx = tc();
        for (key, exclusive) in ops {
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let a = nw.acquire(1, key, mode, &mut tcx);
            let b = qd.acquire_wait(1, key, mode, &mut tcx);
            match (a, b) {
                (Ok(true), Ok(Grant::Acquired)) | (Ok(false), Ok(Grant::Held)) => {}
                (a, b) => panic!("disagreement on ({key}, {mode:?}): {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(nw.live_locks(), qd.live_locks());
    }

    /// The same random scripts driven through *each* backend behind the
    /// [`ConcurrencyControl`] trait: the compatibility matrix holds on a
    /// host-side holder ledger, partitioned/ordered never produce a
    /// deadlock victim (and `has_deadlock` never fires), every schedule
    /// terminates, and the table fully drains.
    #[test]
    fn centralized_backend_scripts_terminate_and_drain(
        scripts in prop::collection::vec(
            prop::collection::vec((0u64..6, any::<bool>(), any::<bool>()), 1..8),
            2..6,
        )
    ) {
        run_backend_scripts(CcBackend::Centralized2PL, &scripts);
    }

    #[test]
    fn partitioned_backend_scripts_terminate_and_drain(
        scripts in prop::collection::vec(
            prop::collection::vec((0u64..6, any::<bool>(), any::<bool>()), 1..8),
            2..6,
        )
    ) {
        run_backend_scripts(CcBackend::PartitionedPerCore, &scripts);
    }

    #[test]
    fn ordered_backend_scripts_terminate_and_drain(
        scripts in prop::collection::vec(
            prop::collection::vec((0u64..6, any::<bool>(), any::<bool>()), 1..8),
            2..6,
        )
    ) {
        run_backend_scripts(CcBackend::DeterministicOrdered, &scripts);
    }
}
