//! Distributed-join network sweep: the same join-heavy DSS stream run
//! on one engine or range-partitioned across 2/4 engine instances, with
//! every exchange message priced by an [`Interconnect`] preset — the
//! bandwidth-vs-compute tradeoff Rödiger et al. study, grafted onto the
//! paper's trace-driven CMP methodology.
//!
//! Where `fig_deploy` splits a fixed silicon budget (scale-**up**
//! repartitioned), `fig_network` scales **out**: every instance is a
//! full Fig. 7 CMP chip (`fc_cmp(4, 16 MB)`), so adding instances adds
//! compute and cache — and adds shuffle/broadcast traffic whose cost
//! depends entirely on the link. The captures are
//! interconnect-independent (the exchange emits `RemoteSend`/
//! `RemoteRecv` events; the link prices them at replay), so each
//! instance count is captured **once** and replayed under all three
//! presets.
//!
//! The expected shape (recorded in EXPERIMENTS.md): over a kernel-stack
//! 10 GbE link the exchange stalls dominate and partitioning loses —
//! 1 instance beats 4. Over NUMA- or RDMA-class links the per-message
//! cost is small enough that the added compute wins and throughput
//! scales with instances. The crossover between those two regimes is
//! the figure's headline.

use dbcmp_sim::{Interconnect, RemoteCounters, SimResult};
use dbcmp_workloads::tpch::dist::DistCapture;
use dbcmp_workloads::tpch::QueryKind;
use dbcmp_workloads::{capture_dss_dist, CaptureOptions, DistOptions, DistStats};

use crate::experiment::{RunSpec, Sweep};
use crate::machines::{fc_cmp, L2Spec};
use crate::workload::FigScale;

/// One point of the network sweep: `instances` full chips joined by
/// `preset`, running the distributed Q3/Q5 stream.
pub struct NetworkPoint {
    pub instances: usize,
    /// Interconnect preset tag: `"NUMA"`, `"RDMA"`, or `"10GbE"`.
    pub preset: &'static str,
    /// Aggregate UIPC (diagnostic — exchange instructions inflate the
    /// distributed captures, so UIPC is not cross-point throughput).
    pub uipc: f64,
    /// Completed query units across all instances' identical measure
    /// windows (as in `fig_deploy`). A unit is one instance finishing
    /// its *fragment*, so cross-`instances` comparisons need [`Self::
    /// queries`].
    pub units: u64,
    /// Logical query completions per window: `units / instances`. Each
    /// instance's fragment covers 1/n of the data, so n fragment units
    /// ≈ one whole query — this is the cross-point throughput metric
    /// the crossover is read from.
    pub queries: f64,
    /// Interconnect traffic summed over the instances' replays.
    pub remote: RemoteCounters,
    /// Share of aggregate core cycles spent stalled on the link
    /// (interconnect stalls land in `CycleClass::Other`, so this is a
    /// true fraction of the breakdown).
    pub link_stall_share: f64,
    /// Capture-side exchange statistics (shuffles vs broadcasts, bytes).
    pub stats: DistStats,
    /// Per-instance replay results, instance order.
    pub per_instance: Vec<SimResult>,
}

/// Interconnect presets swept, in presentation order (fastest-latency
/// link first).
pub fn network_presets() -> [(&'static str, Interconnect); 3] {
    [
        ("NUMA", Interconnect::numa_link()),
        ("RDMA", Interconnect::rdma()),
        ("10GbE", Interconnect::network_10g()),
    ]
}

/// Instance counts swept: one chip (no exchange), two, four.
pub const NETWORK_INSTANCES: [usize; 3] = [1, 2, 4];

/// Capture the distributed join mix at one instance count, at this
/// sweep's conventions (exposed so the smoke gate and the validation
/// anchors rebuild points deterministically).
pub fn network_capture(scale: &FigScale, instances: usize) -> DistCapture {
    capture_dss_dist(
        scale.tpch,
        &QueryKind::JOINS,
        DistOptions {
            capture: CaptureOptions::new(scale.dss_clients, scale.dss_units, scale.seed),
            instances,
        },
    )
}

/// The machine every instance replays on: the Fig. 7 CMP chip, so the
/// 1-instance point is number-identical to `fig_joins`' join-flavor CMP
/// point (asserted by the smoke gate).
pub fn network_chip() -> dbcmp_sim::MachineConfig {
    fc_cmp(4, 16 << 20, L2Spec::Cacti)
}

/// Replay windows for this sweep. A DSS "unit" is a whole query
/// fragment — ~5 M instructions at paper scale — and the 16 clients
/// progress round-robin, so inside the `FigScale` windows (sized for
/// per-transaction OLTP units) the 1-chip row would commit **zero**
/// units. The measure window is widened 16×, identically at every
/// point, so cross-point unit counts stay comparable and the 1-chip
/// denominator of the scaling table is meaningful.
pub fn network_spec(scale: &FigScale) -> RunSpec {
    RunSpec {
        warmup: scale.warmup,
        measure: scale.measure * 16,
        max_cycles: 2_000_000_000,
    }
}

/// The full network sweep: capture once per instance count, replay each
/// capture under every interconnect preset. Points are ordered preset-
/// major (`network_presets` order), instance-minor.
pub fn fig_network(scale: &FigScale) -> Vec<NetworkPoint> {
    let spec = network_spec(scale);
    let captures: Vec<(usize, DistCapture)> = NETWORK_INSTANCES
        .into_iter()
        .map(|n| (n, network_capture(scale, n)))
        .collect();
    let mut out = Vec::new();
    for (preset, link) in network_presets() {
        for (instances, cap) in &captures {
            let mut sweep = Sweep::new();
            let mut bundles = Vec::new();
            for (i, b) in cap.bundles.iter().enumerate() {
                let mut cfg = network_chip();
                cfg.interconnect = link;
                sweep.push(
                    format!("net={preset} {instances}x #{i}"),
                    cfg,
                    spec.throughput(),
                );
                bundles.push(b);
            }
            let per_instance = sweep.run_each(&bundles);
            let mut remote = RemoteCounters::default();
            for r in &per_instance {
                remote.merge(&r.remote);
            }
            let core_cycles: u64 = per_instance.iter().map(|r| r.breakdown.total()).sum();
            let units: u64 = per_instance.iter().map(|r| r.units).sum();
            out.push(NetworkPoint {
                instances: *instances,
                preset,
                uipc: per_instance.iter().map(|r| r.uipc()).sum(),
                units,
                queries: units as f64 / *instances as f64,
                remote,
                link_stall_share: remote.stall_cycles as f64 / core_cycles.max(1) as f64,
                stats: cap.stats,
                per_instance,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_and_distinct() {
        let presets = network_presets();
        assert_eq!(presets.len(), 3);
        let numa = presets[0].1;
        let rdma = presets[1].1;
        let net = presets[2].1;
        assert!(numa.latency_cycles < rdma.latency_cycles);
        assert!(rdma.latency_cycles < net.latency_cycles);
        assert!(rdma.bytes_per_cycle > numa.bytes_per_cycle);
        assert!(numa.bytes_per_cycle > net.bytes_per_cycle);
    }

    #[test]
    fn chip_matches_the_fig_joins_cmp_point() {
        // Same preset the joins sweep labels "CMP" — the 1-instance
        // network point must replay on identical silicon.
        let a = network_chip();
        let [_, (_, b), _] = crate::figures::joins_machines();
        assert_eq!(a, b);
    }
}
