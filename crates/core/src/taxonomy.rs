//! The paper's §2 taxonomy: fat vs lean camps × unsaturated vs saturated
//! workloads, plus the Table 1 characteristics.

use serde::{Deserialize, Serialize};

/// Chip-multiprocessor camp (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Camp {
    /// Wide-issue out-of-order cores (Intel Core Duo, IBM Power5).
    Fat,
    /// Narrow in-order heavily multithreaded cores (Sun UltraSPARC T1,
    /// Compaq Piranha).
    Lean,
}

impl Camp {
    pub fn label(self) -> &'static str {
        match self {
            Camp::Fat => "FC",
            Camp::Lean => "LC",
        }
    }
}

/// Workload saturation (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Saturation {
    /// Processors may idle — response time is the metric.
    Unsaturated,
    /// Idle contexts always find runnable threads — throughput (UIPC) is
    /// the metric.
    Saturated,
}

impl Saturation {
    pub fn label(self) -> &'static str {
        match self {
            Saturation::Unsaturated => "Unsaturated",
            Saturation::Saturated => "Saturated",
        }
    }
}

/// Workload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// TPC-C-like transaction processing.
    Oltp,
    /// TPC-H-like decision support.
    Dss,
}

impl WorkloadKind {
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Oltp => "OLTP",
            WorkloadKind::Dss => "DSS",
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampTraits {
    pub characteristic: &'static str,
    pub fat: &'static str,
    pub lean: &'static str,
}

/// Table 1: chip multiprocessor camp characteristics.
pub fn table1() -> Vec<CampTraits> {
    vec![
        CampTraits {
            characteristic: "Issue Width",
            fat: "Wide (4+)",
            lean: "Narrow (1 or 2)",
        },
        CampTraits {
            characteristic: "Execution Order",
            fat: "Out-of-order",
            lean: "In-order",
        },
        CampTraits {
            characteristic: "Pipeline Depth",
            fat: "Deep (14+ stages)",
            lean: "Shallow (5-6 stages)",
        },
        CampTraits {
            characteristic: "Hardware Threads",
            fat: "Few (1-2)",
            lean: "Many (4+)",
        },
        CampTraits {
            characteristic: "Core Size",
            fat: "Large (3 x LC size)",
            lean: "Small (LC size)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert!(t.iter().any(|r| r.characteristic == "Issue Width"));
    }

    #[test]
    fn labels() {
        assert_eq!(Camp::Fat.label(), "FC");
        assert_eq!(Camp::Lean.label(), "LC");
        assert_eq!(Saturation::Saturated.label(), "Saturated");
        assert_eq!(WorkloadKind::Dss.label(), "DSS");
    }
}
