//! One generator per paper figure/table. Each returns typed data that the
//! harness binaries print and EXPERIMENTS.md records; integration tests
//! assert the paper's qualitative shapes on `FigScale::quick()`.

use dbcmp_sim::analytic::Validation;
use dbcmp_sim::stats::Breakdown;
use dbcmp_sim::SimResult;
use dbcmp_staged::{capture_staged_dss, ExecPolicy};
use dbcmp_trace::TraceBundle;
use dbcmp_workloads::tpch::QueryKind;

use crate::experiment::{run_completion, run_throughput, RunSpec};
use crate::machines::{cmp_for, fc_cmp, lc_cmp, smp_baseline, L2Spec};
use crate::taxonomy::{Camp, Saturation, WorkloadKind};
use crate::workload::{CapturedWorkload, FigScale};

fn spec_of(scale: &FigScale) -> RunSpec {
    RunSpec {
        warmup: scale.warmup,
        measure: scale.measure,
        max_cycles: 2_000_000_000,
    }
}

/// The baseline chip of §3-§4: four cores, 26 MB shared L2 (the paper's
/// "unrealistically fast and large" configuration for Figs. 4/5 uses this
/// size with CACTI latency).
pub const BASE_CORES: usize = 4;
pub const BASE_L2: u64 = 26 << 20;

// ---------------------------------------------------------------- Fig. 2

/// Fig. 2: normalized throughput vs number of concurrent clients (DSS on
/// the FC CMP). Returns (clients, normalized throughput) pairs.
pub fn fig2_saturation(scale: &FigScale, clients: &[usize]) -> Vec<(usize, f64)> {
    let max = *clients.iter().max().unwrap_or(&1);
    let w = CapturedWorkload::dss(scale, max, scale.dss_units);
    let spec = spec_of(scale);
    let mut out = Vec::new();
    let mut base = 0.0;
    for &n in clients {
        let bundle = w.subset(n);
        let res = run_throughput(fc_cmp(BASE_CORES, 4 << 20, L2Spec::Cacti), &bundle, spec);
        let uipc = res.uipc();
        if base == 0.0 {
            base = uipc;
        }
        out.push((n, uipc / base));
    }
    out
}

// ---------------------------------------------------------------- Fig. 3

/// Fig. 3: validate the simulator's CPI breakdown against the independent
/// analytic model (saturated DSS on FC, as the paper validates against the
/// OpenPower 720).
pub fn fig3_validation(scale: &FigScale) -> (Validation, SimResult) {
    let w = CapturedWorkload::saturated(WorkloadKind::Dss, scale);
    let cfg = fc_cmp(BASE_CORES, 4 << 20, L2Spec::Cacti);
    let res = run_throughput(cfg.clone(), &w.bundle, spec_of(scale));
    (Validation::new(&cfg, &res, w.analytic_stats()), res)
}

// ---------------------------------------------------------------- Fig. 4/5

/// One quadrant of Figs. 4/5.
pub struct QuadrantResult {
    pub camp: Camp,
    pub workload: WorkloadKind,
    pub saturation: Saturation,
    pub result: SimResult,
}

/// Run all eight camp × workload × saturation combinations on the
/// baseline chip. Unsaturated runs use completion mode (response time);
/// saturated runs use throughput mode.
pub fn fig45_quadrants(scale: &FigScale) -> Vec<QuadrantResult> {
    let spec = spec_of(scale);
    let mut out = Vec::new();
    for workload in [WorkloadKind::Oltp, WorkloadKind::Dss] {
        let sat = CapturedWorkload::saturated(workload, scale);
        let uns = CapturedWorkload::unsaturated(workload, scale);
        for camp in [Camp::Fat, Camp::Lean] {
            let cfg = cmp_for(camp, BASE_CORES, BASE_L2, L2Spec::Cacti);
            out.push(QuadrantResult {
                camp,
                workload,
                saturation: Saturation::Saturated,
                result: run_throughput(cfg.clone(), &sat.bundle, spec),
            });
            out.push(QuadrantResult {
                camp,
                workload,
                saturation: Saturation::Unsaturated,
                result: run_completion(cfg, &uns.bundle, spec),
            });
        }
    }
    out
}

/// Fig. 4 numbers from the quadrants: (workload, LC/FC response-time
/// ratio, LC/FC throughput ratio).
pub fn fig4_ratios(quadrants: &[QuadrantResult]) -> Vec<(WorkloadKind, f64, f64)> {
    let find = |w, c, s| {
        quadrants
            .iter()
            .find(|q| q.workload == w && q.camp == c && q.saturation == s)
            .expect("quadrant present")
    };
    [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|w| {
            let rt_lc = find(w, Camp::Lean, Saturation::Unsaturated)
                .result
                .avg_unit_cycles
                .unwrap_or(f64::NAN);
            let rt_fc = find(w, Camp::Fat, Saturation::Unsaturated)
                .result
                .avg_unit_cycles
                .unwrap_or(f64::NAN);
            let tp_lc = find(w, Camp::Lean, Saturation::Saturated).result.uipc();
            let tp_fc = find(w, Camp::Fat, Saturation::Saturated).result.uipc();
            (w, rt_lc / rt_fc, tp_lc / tp_fc)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 6

/// One point of the Fig. 6 cache-size sweep.
pub struct Fig6Point {
    pub size: u64,
    pub fixed_latency: bool,
    pub workload: WorkloadKind,
    pub result: SimResult,
}

/// Fig. 6: throughput and CPI contributions vs L2 size, fixed 4-cycle vs
/// CACTI latencies, on the FC CMP.
pub fn fig6_cache_sweep(scale: &FigScale, sizes: &[u64]) -> Vec<Fig6Point> {
    let spec = spec_of(scale);
    let mut out = Vec::new();
    for workload in [WorkloadKind::Oltp, WorkloadKind::Dss] {
        let w = CapturedWorkload::saturated(workload, scale);
        for &size in sizes {
            for fixed in [true, false] {
                let l2 = if fixed {
                    L2Spec::Fixed(4)
                } else {
                    L2Spec::Cacti
                };
                let cfg = fc_cmp(BASE_CORES, size, l2);
                let result = run_throughput(cfg, &w.bundle, spec);
                out.push(Fig6Point {
                    size,
                    fixed_latency: fixed,
                    workload,
                    result,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- Fig. 7

/// Fig. 7: SMP (private 4 MB L2 per node) vs CMP (shared 16 MB), CPI
/// breakdowns, saturated workloads on fat cores.
pub struct Fig7Result {
    pub workload: WorkloadKind,
    pub smp: SimResult,
    pub cmp: SimResult,
}

pub fn fig7_smp_vs_cmp(scale: &FigScale) -> Vec<Fig7Result> {
    let spec = spec_of(scale);
    [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|workload| {
            let w = CapturedWorkload::saturated(workload, scale);
            let smp = run_throughput(smp_baseline(4, 4 << 20, Camp::Fat), &w.bundle, spec);
            let cmp = run_throughput(fc_cmp(4, 16 << 20, L2Spec::Cacti), &w.bundle, spec);
            Fig7Result { workload, smp, cmp }
        })
        .collect()
}

// ------------------------------------------------------------ Contention

/// One point of the contention sweep: an interleaved capture at `hot_pct`
/// skew, replayed on the SMP (private L2s, off-chip coherence) and CMP
/// (shared L2) presets.
pub struct ContentionPoint {
    pub hot_pct: u8,
    /// What the lock manager did during capture (waits, deadlock aborts).
    pub stats: dbcmp_workloads::ContentionStats,
    pub smp: SimResult,
    pub cmp: SimResult,
}

/// Contention sweep (ISSUE 2): interleaved multi-client OLTP capture at
/// increasing hot-row skew. As skew grows, more cycles land on shared
/// lock-table buckets and hot rows — off-chip coherence transfers on the
/// SMP, on-chip shared-L2 hits on the CMP — so the SMP's D-stall share
/// climbs faster (the §5.2 contrast, now driven by *real* lock conflict
/// rather than address overlap alone).
pub fn fig_contention(scale: &FigScale, skews: &[u8]) -> Vec<ContentionPoint> {
    let spec = spec_of(scale);
    skews
        .iter()
        .map(|&hot_pct| {
            let (w, stats) = CapturedWorkload::oltp_contended(scale, hot_pct);
            let smp = run_throughput(smp_baseline(4, 4 << 20, Camp::Fat), &w.bundle, spec);
            let cmp = run_throughput(fc_cmp(4, 16 << 20, L2Spec::Cacti), &w.bundle, spec);
            ContentionPoint {
                hot_pct,
                stats,
                smp,
                cmp,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 point: (cores, normalized throughput, linear reference).
pub type ScalingPoint = (usize, f64, f64);

/// Fig. 8: throughput vs core count (FC CMP, 16 MB shared L2).
pub fn fig8_core_scaling(
    scale: &FigScale,
    core_counts: &[usize],
) -> Vec<(WorkloadKind, Vec<ScalingPoint>)> {
    let spec = spec_of(scale);
    let base_cores = core_counts[0];
    let mut out = Vec::new();
    for workload in [WorkloadKind::Oltp, WorkloadKind::Dss] {
        // Enough clients to keep the largest machine saturated.
        let max_ctx = core_counts.iter().max().unwrap() * 2;
        let w = match workload {
            WorkloadKind::Oltp => {
                CapturedWorkload::oltp(scale, max_ctx.max(scale.oltp_clients), scale.oltp_units)
            }
            WorkloadKind::Dss => {
                CapturedWorkload::dss(scale, max_ctx.max(scale.dss_clients), scale.dss_units)
            }
        };
        let mut series = Vec::new();
        let mut base = 0.0;
        for &n in core_counts {
            let res = run_throughput(fc_cmp(n, 16 << 20, L2Spec::Cacti), &w.bundle, spec);
            let uipc = res.uipc();
            if base == 0.0 {
                base = uipc;
            }
            series.push((n, uipc / base, n as f64 / base_cores as f64));
        }
        out.push((workload, series));
    }
    out
}

// ---------------------------------------------------------------- Fig. 9 (ablation)

/// §6 ablation: staged vs conventional execution of scan pipelines.
pub struct Fig9Result {
    pub policy: &'static str,
    /// Unsaturated response time (cycles per query) on the LC CMP.
    pub response_lc: f64,
    /// Unsaturated response time on the FC CMP.
    pub response_fc: f64,
    /// Instructions per query (software efficiency).
    pub instrs_per_query: f64,
    /// L1D miss rate during the LC run.
    pub l1d_miss_rate: f64,
}

pub fn fig9_staged(scale: &FigScale) -> Vec<Fig9Result> {
    let spec = spec_of(scale);
    let policies: [(&'static str, ExecPolicy); 3] = [
        ("Volcano (conventional)", ExecPolicy::Volcano),
        ("Staged (cohort batches)", ExecPolicy::Staged { batch: 256 }),
        (
            "Staged parallel (3 producers)",
            ExecPolicy::StagedParallel {
                batch: 256,
                producers: 3,
            },
        ),
    ];
    let kinds = [QueryKind::Q1, QueryKind::Q6];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let (mut db, h) = dbcmp_workloads::build_tpch(scale.tpch, scale.seed);
            let bundle: TraceBundle =
                capture_staged_dss(&mut db, &h, &kinds, policy, 2, scale.seed);
            let instrs = bundle.total_instrs() as f64 / bundle.total_units().max(1) as f64;
            let lc = run_completion(lc_cmp(BASE_CORES, BASE_L2, L2Spec::Cacti), &bundle, spec);
            let fc = run_completion(fc_cmp(BASE_CORES, BASE_L2, L2Spec::Cacti), &bundle, spec);
            Fig9Result {
                policy: name,
                response_lc: lc.cycles as f64 / lc.units.max(1) as f64,
                response_fc: fc.cycles as f64 / fc.units.max(1) as f64,
                instrs_per_query: instrs,
                l1d_miss_rate: lc.mem.l1d_miss_rate(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- helpers

/// L2-hit stall share of execution time (the paper's headline metric).
pub fn l2_hit_share(b: &Breakdown) -> f64 {
    b.l2_hit_stall_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure shapes are asserted in the workspace integration tests (they
    // need the full capture + simulate pipeline); here we only check the
    // plumbing on the quick scale.
    #[test]
    fn fig2_runs_and_normalizes() {
        let scale = FigScale::quick();
        let pts = fig2_saturation(&scale, &[1, 4]);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 1.0).abs() < 1e-9, "first point is the baseline");
        assert!(pts[1].1 > 0.0);
    }
}
