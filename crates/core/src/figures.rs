//! One generator per paper figure/table. Each returns typed data that the
//! harness binaries print and EXPERIMENTS.md records; integration tests
//! assert the paper's qualitative shapes on `FigScale::quick()`.

use dbcmp_engine::exec::ExchangeStrategy;
use dbcmp_engine::{CcBackend, CcStats};
use dbcmp_sim::analytic::Validation;
use dbcmp_sim::stats::Breakdown;
use dbcmp_sim::SimResult;
use dbcmp_staged::{capture_staged_dss, ExecPolicy};
use dbcmp_trace::TraceBundle;
use dbcmp_workloads::tpch::QueryKind;

use crate::experiment::{run_keyed, run_throughput, KeyedPoint, RunSpec, Sweep};
use crate::machines::{asym_cmp, cmp_for, fc_cmp, island_cmp, lc_cmp, smp_baseline, L2Spec};
use crate::taxonomy::{Camp, Saturation, WorkloadKind};
use crate::workload::{CapturedWorkload, FigScale};

fn spec_of(scale: &FigScale) -> RunSpec {
    RunSpec {
        warmup: scale.warmup,
        measure: scale.measure,
        max_cycles: 2_000_000_000,
    }
}

/// The baseline chip of §3-§4: four cores, 26 MB shared L2 (the paper's
/// "unrealistically fast and large" configuration for Figs. 4/5 uses this
/// size with CACTI latency).
pub const BASE_CORES: usize = 4;
pub const BASE_L2: u64 = 26 << 20;

// ---------------------------------------------------------------- Fig. 2

/// Fig. 2: normalized throughput vs number of concurrent clients (DSS on
/// the FC CMP). Returns (clients, normalized throughput) pairs.
pub fn fig2_saturation(scale: &FigScale, clients: &[usize]) -> Vec<(usize, f64)> {
    let max = *clients.iter().max().unwrap_or(&1);
    let w = CapturedWorkload::dss(scale, max, scale.dss_units);
    let spec = spec_of(scale);
    // One machine per client count, replaying a growing subset of the
    // same capture; the subsets are per-point bundles for the sweep.
    let subsets: Vec<_> = clients.iter().map(|&n| w.subset(n)).collect();
    let keyed = run_keyed(
        clients
            .iter()
            .zip(&subsets)
            .map(|(&n, subset)| KeyedPoint {
                label: format!("{n} clients"),
                cfg: fc_cmp(BASE_CORES, 4 << 20, L2Spec::Cacti),
                mode: spec.throughput(),
                bundle: subset,
                key: n,
            })
            .collect(),
    );
    let base = keyed
        .iter()
        .map(|(_, r)| r.uipc())
        .find(|&u| u > 0.0)
        .unwrap_or(1.0);
    keyed
        .into_iter()
        .map(|(n, r)| (n, r.uipc() / base))
        .collect()
}

// ---------------------------------------------------------------- Fig. 3

/// Fig. 3: validate the simulator's CPI breakdown against the independent
/// analytic model (saturated DSS on FC, as the paper validates against the
/// OpenPower 720).
pub fn fig3_validation(scale: &FigScale) -> (Validation, SimResult) {
    let w = CapturedWorkload::saturated(WorkloadKind::Dss, scale);
    let cfg = fc_cmp(BASE_CORES, 4 << 20, L2Spec::Cacti);
    let res = run_throughput(cfg.clone(), &w.bundle, spec_of(scale));
    (Validation::new(&cfg, &res, w.analytic_stats()), res)
}

// ---------------------------------------------------------------- Fig. 4/5

/// One quadrant of Figs. 4/5.
pub struct QuadrantResult {
    pub camp: Camp,
    pub workload: WorkloadKind,
    pub saturation: Saturation,
    pub result: SimResult,
}

/// Run all eight camp × workload × saturation combinations on the
/// baseline chip, fanned out as one parallel sweep. Unsaturated runs use
/// completion mode (response time); saturated runs use throughput mode.
pub fn fig45_quadrants(scale: &FigScale) -> Vec<QuadrantResult> {
    let spec = spec_of(scale);
    let captures: Vec<(WorkloadKind, CapturedWorkload, CapturedWorkload)> =
        [WorkloadKind::Oltp, WorkloadKind::Dss]
            .into_iter()
            .map(|w| {
                (
                    w,
                    CapturedWorkload::saturated(w, scale),
                    CapturedWorkload::unsaturated(w, scale),
                )
            })
            .collect();
    let mut points = Vec::new();
    for (workload, sat, uns) in &captures {
        for camp in [Camp::Fat, Camp::Lean] {
            let cfg = cmp_for(camp, BASE_CORES, BASE_L2, L2Spec::Cacti);
            for (saturation, w, mode) in [
                (Saturation::Saturated, sat, spec.throughput()),
                (Saturation::Unsaturated, uns, spec.completion()),
            ] {
                points.push(KeyedPoint {
                    label: format!(
                        "{}/{}/{}",
                        camp.label(),
                        workload.label(),
                        saturation.label()
                    ),
                    cfg: cfg.clone(),
                    mode,
                    bundle: &w.bundle,
                    key: (*workload, camp, saturation),
                });
            }
        }
    }
    run_keyed(points)
        .into_iter()
        .map(|((workload, camp, saturation), result)| QuadrantResult {
            camp,
            workload,
            saturation,
            result,
        })
        .collect()
}

/// Fig. 4 numbers from the quadrants: (workload, LC/FC response-time
/// ratio, LC/FC throughput ratio).
pub fn fig4_ratios(quadrants: &[QuadrantResult]) -> Vec<(WorkloadKind, f64, f64)> {
    let find = |w, c, s| {
        quadrants
            .iter()
            .find(|q| q.workload == w && q.camp == c && q.saturation == s)
            .expect("quadrant present")
    };
    [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|w| {
            let rt_lc = find(w, Camp::Lean, Saturation::Unsaturated)
                .result
                .avg_unit_cycles
                .unwrap_or(f64::NAN);
            let rt_fc = find(w, Camp::Fat, Saturation::Unsaturated)
                .result
                .avg_unit_cycles
                .unwrap_or(f64::NAN);
            let tp_lc = find(w, Camp::Lean, Saturation::Saturated).result.uipc();
            let tp_fc = find(w, Camp::Fat, Saturation::Saturated).result.uipc();
            (w, rt_lc / rt_fc, tp_lc / tp_fc)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 6

/// One point of the Fig. 6 cache-size sweep.
pub struct Fig6Point {
    pub size: u64,
    pub fixed_latency: bool,
    pub workload: WorkloadKind,
    pub result: SimResult,
}

/// Fig. 6: throughput and CPI contributions vs L2 size, fixed 4-cycle vs
/// CACTI latencies, on the FC CMP.
pub fn fig6_cache_sweep(scale: &FigScale, sizes: &[u64]) -> Vec<Fig6Point> {
    let spec = spec_of(scale);
    let captures: Vec<(WorkloadKind, CapturedWorkload)> = [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|w| (w, CapturedWorkload::saturated(w, scale)))
        .collect();
    let mut points = Vec::new();
    for (workload, w) in &captures {
        for &size in sizes {
            for fixed in [true, false] {
                let l2 = if fixed {
                    L2Spec::Fixed(4)
                } else {
                    L2Spec::Cacti
                };
                points.push(KeyedPoint {
                    label: format!("{} L2={}MB fixed={fixed}", workload.label(), size >> 20),
                    cfg: fc_cmp(BASE_CORES, size, l2),
                    mode: spec.throughput(),
                    bundle: &w.bundle,
                    key: (*workload, size, fixed),
                });
            }
        }
    }
    run_keyed(points)
        .into_iter()
        .map(|((workload, size, fixed), result)| Fig6Point {
            size,
            fixed_latency: fixed,
            workload,
            result,
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 7

/// Fig. 7: SMP (private 4 MB L2 per node) vs CMP (shared 16 MB), CPI
/// breakdowns, saturated workloads on fat cores.
pub struct Fig7Result {
    pub workload: WorkloadKind,
    pub smp: SimResult,
    pub cmp: SimResult,
}

pub fn fig7_smp_vs_cmp(scale: &FigScale) -> Vec<Fig7Result> {
    let spec = spec_of(scale);
    let captures: Vec<(WorkloadKind, CapturedWorkload)> = [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|w| (w, CapturedWorkload::saturated(w, scale)))
        .collect();
    let mut points = Vec::new();
    for (workload, w) in &captures {
        for (tag, cfg) in [
            ("SMP", smp_baseline(4, 4 << 20, Camp::Fat)),
            ("CMP", fc_cmp(4, 16 << 20, L2Spec::Cacti)),
        ] {
            points.push(KeyedPoint {
                label: format!("{tag} {}", workload.label()),
                cfg,
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*workload, tag),
            });
        }
    }
    let mut it = run_keyed(points).into_iter();
    let mut out = Vec::new();
    while let (Some(((w1, t1), smp)), Some(((w2, t2), cmp))) = (it.next(), it.next()) {
        assert_eq!((w1, t1, t2), (w2, "SMP", "CMP"), "keyed pairs aligned");
        out.push(Fig7Result {
            workload: w1,
            smp,
            cmp,
        });
    }
    out
}

// ------------------------------------------------------------ Contention

/// One point of the contention sweep: an interleaved capture at `hot_pct`
/// skew, replayed on the SMP (private L2s, off-chip coherence) and CMP
/// (shared L2) presets.
pub struct ContentionPoint {
    pub hot_pct: u8,
    /// What the lock manager did during capture (waits, deadlock aborts).
    pub stats: dbcmp_workloads::ContentionStats,
    pub smp: SimResult,
    pub cmp: SimResult,
}

/// Contention sweep (ISSUE 2): interleaved multi-client OLTP capture at
/// increasing hot-row skew. As skew grows, more cycles land on shared
/// lock-table buckets and hot rows — off-chip coherence transfers on the
/// SMP, on-chip shared-L2 hits on the CMP — so the SMP's D-stall share
/// climbs faster (the §5.2 contrast, now driven by *real* lock conflict
/// rather than address overlap alone).
pub fn fig_contention(scale: &FigScale, skews: &[u8]) -> Vec<ContentionPoint> {
    let spec = spec_of(scale);
    // Captures are inherently sequential (each interleaves clients on
    // one shared database); the replays fan out as one sweep.
    let captures: Vec<_> = skews
        .iter()
        .map(|&hot_pct| {
            let (w, stats) = CapturedWorkload::oltp_contended(scale, hot_pct);
            (hot_pct, w, stats)
        })
        .collect();
    let mut points = Vec::new();
    for (hot_pct, w, _) in &captures {
        for (tag, cfg) in [
            ("SMP", smp_baseline(4, 4 << 20, Camp::Fat)),
            ("CMP", fc_cmp(4, 16 << 20, L2Spec::Cacti)),
        ] {
            points.push(KeyedPoint {
                label: format!("{tag} skew={hot_pct}%"),
                cfg,
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*hot_pct, tag),
            });
        }
    }
    let mut it = run_keyed(points).into_iter();
    captures
        .into_iter()
        .map(|(hot_pct, _, stats)| {
            let ((h1, t1), smp) = it.next().expect("smp result");
            let ((h2, t2), cmp) = it.next().expect("cmp result");
            assert_eq!((h1, h2, t1, t2), (hot_pct, hot_pct, "SMP", "CMP"));
            ContentionPoint {
                hot_pct,
                stats,
                smp,
                cmp,
            }
        })
        .collect()
}

// ----------------------------------------------- Concurrency-control sweep

/// One point of the concurrency-control sweep: a contended capture under
/// `backend` at `hot_pct` skew, replayed on the SMP / CMP / 2x2-island
/// presets (the same [`joins_machines`] triple, so the hardware axis is
/// directly comparable across figures).
pub struct CcPoint {
    pub backend: CcBackend,
    pub hot_pct: u8,
    /// Scheduler-level contention counters (waits, deadlock aborts, …).
    pub stats: dbcmp_workloads::ContentionStats,
    /// The backend's own counters (remote lock messages, ordering waits,
    /// fallback conflicts, …).
    pub cc: CcStats,
    pub smp: SimResult,
    pub cmp: SimResult,
    pub island: SimResult,
}

/// Figure label for a concurrency-control backend.
///
/// Exhaustive over [`CcBackend`] by design — the dbcmp-lint X2 rule
/// rejects builds where a backend variant is missing here.
pub fn cc_backend_label(backend: CcBackend) -> &'static str {
    match backend {
        CcBackend::Centralized2PL => "2PL",
        CcBackend::PartitionedPerCore => "PART",
        CcBackend::DeterministicOrdered => "ORDER",
    }
}

/// Figure label for an exchange strategy.
///
/// Exhaustive over [`ExchangeStrategy`] by design — the dbcmp-lint X3
/// rule rejects builds where a strategy variant is missing here.
pub fn exchange_label(strategy: ExchangeStrategy) -> &'static str {
    match strategy {
        ExchangeStrategy::Local => "LOCAL",
        ExchangeStrategy::Broadcast => "BCAST",
        ExchangeStrategy::Shuffle => "SHUFFLE",
    }
}

/// The backends the `fig_cc` sweep compares, in presentation order.
pub fn cc_backends() -> [CcBackend; 3] {
    [
        CcBackend::Centralized2PL,
        CcBackend::PartitionedPerCore,
        CcBackend::DeterministicOrdered,
    ]
}

/// Concurrency-control sweep (ISSUE 9): the contention sweep's skew axis
/// crossed with the *software* axis — which concurrency-control backend
/// the engine runs. Centralized 2PL points take exactly the
/// `fig_contention` capture path (same draws, same traces), so the two
/// figures share an anchor; the partitioned backend converts lock-table
/// sharing into explicit cross-core messages the interconnect prices; the
/// deterministic-ordered backend trades deadlock aborts (structurally
/// zero) for ordering-queue waits. Comparability caveat: 2PL and
/// partitioned points run the legacy per-client draw streams, the ordered
/// backend runs per-transaction streams (its read/write-set derivation
/// replays them), so ordered-vs-2PL compares *workload distributions*,
/// not transaction-for-transaction identical streams.
pub fn fig_cc(scale: &FigScale, skews: &[u8]) -> Vec<CcPoint> {
    let spec = spec_of(scale);
    let captures: Vec<_> = cc_backends()
        .into_iter()
        .flat_map(|backend| skews.iter().map(move |&hot_pct| (backend, hot_pct)))
        .map(|(backend, hot_pct)| {
            let (w, stats, cc) = CapturedWorkload::oltp_contended_cc(scale, hot_pct, backend);
            (backend, hot_pct, w, stats, cc)
        })
        .collect();
    let mut points = Vec::new();
    for (backend, hot_pct, w, _, _) in &captures {
        for (tag, cfg) in joins_machines() {
            points.push(KeyedPoint {
                label: format!("{tag} {} skew={hot_pct}%", cc_backend_label(*backend)),
                cfg,
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*backend, *hot_pct, tag),
            });
        }
    }
    let mut it = run_keyed(points).into_iter();
    captures
        .into_iter()
        .map(|(backend, hot_pct, _, stats, cc)| {
            let (k1, smp) = it.next().expect("smp result");
            let (k2, cmp) = it.next().expect("cmp result");
            let (k3, island) = it.next().expect("island result");
            assert_eq!(k1, (backend, hot_pct, "SMP"));
            assert_eq!(k2, (backend, hot_pct, "CMP"));
            assert_eq!(k3, (backend, hot_pct, "ISLAND 2x2"));
            CcPoint {
                backend,
                hot_pct,
                stats,
                cc,
                smp,
                cmp,
                island,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 point: (cores, normalized throughput, linear reference).
pub type ScalingPoint = (usize, f64, f64);

/// Fig. 8 with wall-clock evidence for the sweep runner: the series plus
/// the parallel and sequential times of the *same* sweep, which must be
/// result-identical.
pub struct Fig8Run {
    pub series: Vec<(WorkloadKind, Vec<ScalingPoint>)>,
    pub parallel: std::time::Duration,
    pub sequential: std::time::Duration,
    /// Worker threads the parallel run used (1 on a single-CPU host,
    /// where the runner degrades to the sequential path by design).
    pub workers: usize,
}

/// Fig. 8: throughput vs core count (FC CMP, 16 MB shared L2), fanned
/// out as one parallel sweep.
pub fn fig8_core_scaling(
    scale: &FigScale,
    core_counts: &[usize],
) -> Vec<(WorkloadKind, Vec<ScalingPoint>)> {
    fig8_run(scale, core_counts, false).series
}

/// Fig. 8 timed both ways — what the `fig8_core_count` binary always
/// runs (and the acceptance record in EXPERIMENTS.md): the parallel and
/// sequential clocks of one sweep, results asserted identical.
pub fn fig8_core_scaling_timed(scale: &FigScale, core_counts: &[usize]) -> Fig8Run {
    fig8_run(scale, core_counts, true)
}

fn fig8_run(scale: &FigScale, core_counts: &[usize], timed: bool) -> Fig8Run {
    let spec = spec_of(scale);
    let base_cores = core_counts[0];
    let captures: Vec<(WorkloadKind, CapturedWorkload)> = [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|workload| {
            // Enough clients to keep the largest machine saturated.
            let max_ctx = core_counts.iter().max().unwrap() * 2;
            let w = match workload {
                WorkloadKind::Oltp => {
                    CapturedWorkload::oltp(scale, max_ctx.max(scale.oltp_clients), scale.oltp_units)
                }
                WorkloadKind::Dss => {
                    CapturedWorkload::dss(scale, max_ctx.max(scale.dss_clients), scale.dss_units)
                }
            };
            (workload, w)
        })
        .collect();
    // One tuple per point keeps sweep/bundle/key alignment structural
    // (the sweep object itself is needed twice: timed parallel + timed
    // sequential runs of the same points).
    let grid: Vec<((WorkloadKind, usize), &CapturedWorkload)> = captures
        .iter()
        .flat_map(|(workload, w)| core_counts.iter().map(move |&n| ((*workload, n), w)))
        .collect();
    let mut sweep = Sweep::new();
    let mut bundles = Vec::new();
    for ((workload, n), w) in &grid {
        sweep.push(
            format!("{} {n} cores", workload.label()),
            fc_cmp(*n, 16 << 20, L2Spec::Cacti),
            spec.throughput(),
        );
        bundles.push(&w.bundle);
    }
    let workers = sweep.default_workers();
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): measures host speedup of the sweep itself; never feeds a capture or figure datum, and the identity assert below proves results are time-independent
    let t0 = std::time::Instant::now();
    let results = sweep.run_each(&bundles);
    let parallel = t0.elapsed();
    let sequential = if timed {
        #[allow(clippy::disallowed_methods)]
        // lint:allow(wall-clock): same host-side speedup measurement as t0 above
        let t1 = std::time::Instant::now();
        let seq = sweep.run_each_sequential(&bundles);
        let elapsed = t1.elapsed();
        assert_eq!(
            results, seq,
            "parallel and sequential fig8 sweeps must be byte-identical"
        );
        elapsed
    } else {
        std::time::Duration::ZERO
    };

    let mut results = results.into_iter();
    let series = captures
        .iter()
        .map(|(workload, _)| {
            let mut series = Vec::new();
            let mut base = 0.0;
            for &n in core_counts {
                let uipc = results.next().expect("fig8 point").uipc();
                if base == 0.0 {
                    base = uipc;
                }
                series.push((n, uipc / base, n as f64 / base_cores as f64));
            }
            (*workload, series)
        })
        .collect();
    Fig8Run {
        series,
        parallel,
        sequential,
        workers,
    }
}

// ---------------------------------------------------------------- Fig. 9 (ablation)

/// §6 ablation: staged vs conventional execution of scan pipelines.
pub struct Fig9Result {
    pub policy: &'static str,
    /// Unsaturated response time (cycles per query) on the LC CMP.
    pub response_lc: f64,
    /// Unsaturated response time on the FC CMP.
    pub response_fc: f64,
    /// Instructions per query (software efficiency).
    pub instrs_per_query: f64,
    /// L1D miss rate during the LC run.
    pub l1d_miss_rate: f64,
}

pub fn fig9_staged(scale: &FigScale) -> Vec<Fig9Result> {
    let spec = spec_of(scale);
    let policies: [(&'static str, ExecPolicy); 3] = [
        ("Volcano (conventional)", ExecPolicy::Volcano),
        ("Staged (cohort batches)", ExecPolicy::Staged { batch: 256 }),
        (
            "Staged parallel (3 producers)",
            ExecPolicy::StagedParallel {
                batch: 256,
                producers: 3,
            },
        ),
    ];
    let kinds = [QueryKind::Q1, QueryKind::Q6];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let (mut db, h) = dbcmp_workloads::build_tpch(scale.tpch, scale.seed);
            let bundle: TraceBundle =
                capture_staged_dss(&mut db, &h, &kinds, policy, 2, scale.seed)
                    .expect("Q1/Q6 are staged-pipelineable");
            let instrs = bundle.total_instrs() as f64 / bundle.total_units().max(1) as f64;
            let mut results = Sweep::new()
                .point(
                    format!("{name} LC"),
                    lc_cmp(BASE_CORES, BASE_L2, L2Spec::Cacti),
                    spec.completion(),
                )
                .point(
                    format!("{name} FC"),
                    fc_cmp(BASE_CORES, BASE_L2, L2Spec::Cacti),
                    spec.completion(),
                )
                .run(&bundle)
                .into_iter();
            let lc = results.next().expect("lc result");
            let fc = results.next().expect("fc result");
            Fig9Result {
                policy: name,
                response_lc: lc.cycles as f64 / lc.units.max(1) as f64,
                response_fc: fc.cycles as f64 / fc.units.max(1) as f64,
                instrs_per_query: instrs,
                l1d_miss_rate: lc.mem.l1d_miss_rate(),
            }
        })
        .collect()
}

// ------------------------------------------------------------- fig_asym

/// One point of the asymmetric-CMP ratio sweep.
pub struct AsymPoint {
    pub fat_slots: usize,
    pub lean_slots: usize,
    pub workload: WorkloadKind,
    pub result: SimResult,
}

/// Asymmetric-CMP extension: sweep fat:lean slot ratios from all-fat to
/// all-lean at a fixed slot count and fixed shared L2, on saturated OLTP
/// and DSS. As fat slots give way to lean ones the machine trades
/// single-thread ILP for thread-level latency hiding — the breakdown
/// shifts from exposed data stalls toward computation, and saturated
/// throughput climbs (the paper's §4 camp contrast, now visible *within*
/// one chip, per the hardware-islands line of work in PAPERS.md).
/// The `(fat, lean)` slot ratios `fig_asym` sweeps: all-fat down to
/// all-lean in steps of two slots, with the pure-lean endpoint always
/// included even when `total_slots` is odd (the fig_smoke gate finds
/// both pure camps by searching for them).
pub fn asym_ratios(total_slots: usize) -> Vec<(usize, usize)> {
    let mut fats: Vec<usize> = (0..=total_slots).rev().step_by(2).collect();
    if fats.last() != Some(&0) {
        fats.push(0);
    }
    fats.into_iter()
        .map(|fat| (fat, total_slots - fat))
        .collect()
}

pub fn fig_asym(scale: &FigScale, total_slots: usize) -> Vec<AsymPoint> {
    let spec = spec_of(scale);
    let ratios = asym_ratios(total_slots);
    // Enough clients to saturate the leanest (most-context) machine.
    let max_ctx = asym_cmp(0, total_slots, BASE_L2, L2Spec::Cacti).total_contexts();
    let captures: Vec<(WorkloadKind, CapturedWorkload)> = [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|workload| {
            let w = match workload {
                WorkloadKind::Oltp => {
                    CapturedWorkload::oltp(scale, max_ctx.max(scale.oltp_clients), scale.oltp_units)
                }
                WorkloadKind::Dss => {
                    CapturedWorkload::dss(scale, max_ctx.max(scale.dss_clients), scale.dss_units)
                }
            };
            (workload, w)
        })
        .collect();
    let mut points = Vec::new();
    for (workload, w) in &captures {
        for &(fat, lean) in &ratios {
            points.push(KeyedPoint {
                label: format!("{} {fat}F+{lean}L", workload.label()),
                cfg: asym_cmp(fat, lean, BASE_L2, L2Spec::Cacti),
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*workload, fat, lean),
            });
        }
    }
    run_keyed(points)
        .into_iter()
        .map(|((workload, fat_slots, lean_slots), result)| AsymPoint {
            fat_slots,
            lean_slots,
            workload,
            result,
        })
        .collect()
}

// ----------------------------------------------------------- fig_islands

/// One point of the island sweep.
pub struct IslandPoint {
    pub clusters: usize,
    pub cores_per_cluster: usize,
    pub workload: WorkloadKind,
    pub result: SimResult,
}

/// The island cluster sizes swept at a given core count: every divisor,
/// from one chip-spanning cluster down to one-core islands.
pub fn island_cluster_sizes(cores: usize) -> Vec<usize> {
    (1..=cores)
        .rev()
        .filter(|k| cores.is_multiple_of(*k))
        .collect()
}

/// Island sweep (tentpole of the topology redesign): a **fixed total L2
/// capacity** re-partitioned from one chip-shared L2, through islands of
/// shrinking size, to fully private per-core L2s — on saturated OLTP and
/// DSS. The two pure endpoints are exactly Fig. 7's CMP and SMP presets
/// (`island_cmp(1, n)` ≡ `fc_cmp`, `island_cmp(n, 1)` ≡ `smp_baseline`),
/// so the paper's SMP-vs-CMP contrast becomes the two extremes of one
/// curve: moving right, per-island caches shrink but get faster (CACTI
/// latency for the island's share) and more sharing turns from on-chip
/// L2/L1-to-L1 hits into off-chip coherence transfers. OLTP, rich in
/// shared hot structures, pays for partitioning much sooner than scan-
/// dominated DSS — the crossover EXPERIMENTS.md records.
pub fn fig_islands(scale: &FigScale, cores: usize, total_l2: u64) -> Vec<IslandPoint> {
    let spec = spec_of(scale);
    let captures: Vec<(WorkloadKind, CapturedWorkload)> = [WorkloadKind::Oltp, WorkloadKind::Dss]
        .into_iter()
        .map(|w| (w, CapturedWorkload::saturated(w, scale)))
        .collect();
    let mut points = Vec::new();
    for (workload, w) in &captures {
        for k in island_cluster_sizes(cores) {
            let clusters = cores / k;
            points.push(KeyedPoint {
                label: format!("{} {clusters}x{k}", workload.label()),
                cfg: island_cmp(clusters, k, total_l2, L2Spec::Cacti),
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*workload, clusters, k),
            });
        }
    }
    run_keyed(points)
        .into_iter()
        .map(
            |((workload, clusters, cores_per_cluster), result)| IslandPoint {
                clusters,
                cores_per_cluster,
                workload,
                result,
            },
        )
        .collect()
}

// ------------------------------------------------------------- fig_joins

/// One point of the join sweep: a DSS flavor on a machine preset.
pub struct JoinsPoint {
    /// Machine tag: `"SMP"`, `"CMP"`, or `"ISLAND 2x2"`.
    pub machine: &'static str,
    /// `true` for the join-heavy Q3/Q5 capture, `false` for the paper's
    /// scan mix.
    pub join_heavy: bool,
    /// Simulation result with per-level cache counters.
    pub result: SimResult,
}

/// Capture-side attribution for one DSS flavor: where the instructions
/// went and how big the data working set was.
pub struct JoinsCaptureStats {
    /// Instructions charged to the hash-join build/probe region.
    pub hashjoin_instrs: u64,
    /// Instructions charged to the (index-)nested-loop region.
    pub nlj_instrs: u64,
    /// Instructions charged to the B+Tree search region (Q5's
    /// index-nested-loop descents land here).
    pub btree_instrs: u64,
    /// Total instructions in the capture.
    pub total_instrs: u64,
    /// Distinct data bytes touched (cache-line granular).
    pub data_working_set: u64,
}

fn joins_capture_stats(w: &CapturedWorkload) -> JoinsCaptureStats {
    // One decode pass for all three region lookups (paper-scale bundles
    // run to millions of events).
    let totals = w.bundle.region_instr_totals();
    let by_name = |name: &str| {
        w.bundle
            .regions
            .iter()
            .find(|r| r.name == name)
            .map_or(0, |r| totals[r.id as usize])
    };
    JoinsCaptureStats {
        hashjoin_instrs: by_name("exec-hashjoin"),
        nlj_instrs: by_name("exec-nlj"),
        btree_instrs: by_name("btree-search"),
        total_instrs: w.bundle.total_instrs(),
        data_working_set: w.summary.data_working_set(),
    }
}

/// The full `fig_joins` run: six simulation points plus per-capture
/// instruction attribution.
pub struct FigJoinsRun {
    /// 2 flavors x 3 machines, scan flavor first, machines in
    /// SMP → CMP → island order.
    pub points: Vec<JoinsPoint>,
    /// Attribution for the scan-mix capture.
    pub scan: JoinsCaptureStats,
    /// Attribution for the join-heavy capture.
    pub joins: JoinsCaptureStats,
}

/// The machine presets `fig_joins` sweeps: Fig. 7's SMP (private 4 MB
/// L2 per node) and CMP (shared 16 MB L2), plus the 2x2 hardware-island
/// midpoint at the same 16 MB total — so the scan-flavor endpoints
/// reproduce Fig. 7's numbers on the same captures.
pub fn joins_machines() -> [(&'static str, dbcmp_sim::MachineConfig); 3] {
    [
        ("SMP", smp_baseline(4, 4 << 20, Camp::Fat)),
        ("CMP", fc_cmp(4, 16 << 20, L2Spec::Cacti)),
        ("ISLAND 2x2", island_cmp(2, 2, 16 << 20, L2Spec::Cacti)),
    ]
}

/// Join sweep (the join half of the DSS camp): the paper's scan-mix DSS
/// capture vs a join-heavy Q3/Q5 capture, replayed on Fig. 7's SMP/CMP
/// presets and the 2x2 island midpoint. Scans stream through any cache;
/// the joins' build-side hash tables and B+Tree descents form working
/// sets that fit a pooled 16 MB L2 but blow past a 4 MB private island —
/// so partitioning costs the join flavor capacity misses where the scan
/// flavor barely notices (the *OLTP on Hardware Islands* capacity axis,
/// driven here by join state instead of scan footprint).
pub fn fig_joins(scale: &FigScale) -> FigJoinsRun {
    let spec = spec_of(scale);
    let captures: Vec<(bool, CapturedWorkload)> = vec![
        (false, CapturedWorkload::saturated(WorkloadKind::Dss, scale)),
        (
            true,
            CapturedWorkload::dss_joins(scale, scale.dss_clients, scale.dss_units),
        ),
    ];
    let mut points = Vec::new();
    for (join_heavy, w) in &captures {
        for (tag, cfg) in joins_machines() {
            points.push(KeyedPoint {
                label: format!(
                    "{tag} {}",
                    if *join_heavy { "join DSS" } else { "scan DSS" }
                ),
                cfg,
                mode: spec.throughput(),
                bundle: &w.bundle,
                key: (*join_heavy, tag),
            });
        }
    }
    let points = run_keyed(points)
        .into_iter()
        .map(|((join_heavy, machine), result)| JoinsPoint {
            machine,
            join_heavy,
            result,
        })
        .collect();
    FigJoinsRun {
        points,
        scan: joins_capture_stats(&captures[0].1),
        joins: joins_capture_stats(&captures[1].1),
    }
}

// ---------------------------------------------------------------- helpers

/// L2-hit stall share of execution time (the paper's headline metric).
pub fn l2_hit_share(b: &Breakdown) -> f64 {
    b.l2_hit_stall_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure shapes are asserted in the workspace integration tests (they
    // need the full capture + simulate pipeline); here we only check the
    // plumbing on the quick scale.
    #[test]
    fn fig2_runs_and_normalizes() {
        let scale = FigScale::quick();
        let pts = fig2_saturation(&scale, &[1, 4]);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 1.0).abs() < 1e-9, "first point is the baseline");
        assert!(pts[1].1 > 0.0);
    }

    #[test]
    fn island_cluster_sizes_cover_both_extremes() {
        assert_eq!(island_cluster_sizes(4), [4, 2, 1]);
        assert_eq!(island_cluster_sizes(8), [8, 4, 2, 1]);
        assert_eq!(island_cluster_sizes(6), [6, 3, 2, 1]);
        for cores in 1..=8 {
            let sizes = island_cluster_sizes(cores);
            assert_eq!(sizes.first(), Some(&cores), "chip-shared endpoint");
            assert_eq!(sizes.last(), Some(&1), "fully-private endpoint");
        }
    }

    #[test]
    fn asym_ratios_always_reach_both_pure_camps() {
        assert_eq!(asym_ratios(8), [(8, 0), (6, 2), (4, 4), (2, 6), (0, 8)]);
        assert_eq!(asym_ratios(4), [(4, 0), (2, 2), (0, 4)]);
        // Odd totals must still end on the pure-lean endpoint.
        assert_eq!(asym_ratios(5), [(5, 0), (3, 2), (1, 4), (0, 5)]);
        assert_eq!(asym_ratios(1), [(1, 0), (0, 1)]);
        for total in 1..=9 {
            let r = asym_ratios(total);
            assert_eq!(r.first(), Some(&(total, 0)), "all-fat endpoint");
            assert_eq!(r.last(), Some(&(0, total)), "all-lean endpoint");
            assert!(r.iter().all(|&(f, l)| f + l == total));
        }
    }
}
