//! Plain-text table formatting for the figure harnesses and
//! EXPERIMENTS.md.

use dbcmp_sim::stats::{Breakdown, ALL_CLASSES};

/// Format an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One line per class: percentage of execution time.
pub fn breakdown_row(b: &Breakdown) -> Vec<String> {
    let f = b.fractions();
    ALL_CLASSES
        .iter()
        .map(|&c| format!("{:.1}%", f[c as usize] * 100.0))
        .collect()
}

/// Headers matching [`breakdown_row`].
pub fn breakdown_headers() -> Vec<&'static str> {
    ALL_CLASSES.iter().map(|c| c.label()).collect()
}

/// Aggregate a breakdown into the paper's four Fig. 5 components:
/// (computation, I-stalls, D-stalls, other).
pub fn four_components(b: &Breakdown) -> (f64, f64, f64, f64) {
    (
        b.compute_fraction(),
        b.instr_stall_fraction(),
        b.data_stall_fraction(),
        1.0 - b.compute_fraction() - b.instr_stall_fraction() - b.data_stall_fraction(),
    )
}

/// Format a float with fixed precision.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcmp_sim::CycleClass;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn four_components_sum_to_one() {
        let mut b = Breakdown::default();
        b.charge(CycleClass::Compute, 50);
        b.charge(CycleClass::IStallL2, 10);
        b.charge(CycleClass::DStallL2Hit, 30);
        b.charge(CycleClass::Other, 10);
        let (c, i, d, o) = four_components(&b);
        assert!((c + i + d + o - 1.0).abs() < 1e-9);
        assert!((d - 0.3).abs() < 1e-9);
    }
}
