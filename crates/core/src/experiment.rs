//! Experiment runner: one simulation = (machine, bundle, run mode).

use dbcmp_sim::{Machine, MachineConfig, RunMode, SimResult};
use dbcmp_trace::TraceBundle;

/// Simulation windows.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub warmup: u64,
    pub measure: u64,
    /// Bound for completion-mode runs.
    pub max_cycles: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            warmup: 400_000,
            measure: 1_600_000,
            max_cycles: 400_000_000,
        }
    }
}

/// Saturated-throughput run (the paper's UIPC metric).
pub fn run_throughput(cfg: MachineConfig, bundle: &TraceBundle, spec: RunSpec) -> SimResult {
    Machine::run(
        cfg,
        bundle,
        RunMode::Throughput {
            warmup: spec.warmup,
            measure: spec.measure,
        },
    )
}

/// Run-to-completion (the paper's response-time metric).
pub fn run_completion(cfg: MachineConfig, bundle: &TraceBundle, spec: RunSpec) -> SimResult {
    Machine::run(
        cfg,
        bundle,
        RunMode::Completion {
            max_cycles: spec.max_cycles,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{fc_cmp, L2Spec};
    use crate::taxonomy::WorkloadKind;
    use crate::workload::{CapturedWorkload, FigScale};

    #[test]
    fn throughput_and_completion_run() {
        let scale = FigScale::quick();
        let w = CapturedWorkload::unsaturated(WorkloadKind::Dss, &scale);
        let cfg = fc_cmp(1, 1 << 20, L2Spec::Cacti);
        let spec = RunSpec {
            warmup: 10_000,
            measure: 50_000,
            max_cycles: 100_000_000,
        };
        let t = run_throughput(cfg.clone(), &w.bundle, spec);
        assert!(t.instrs > 0);
        let c = run_completion(cfg, &w.bundle, spec);
        assert!(c.units >= 1, "query must complete");
        assert!(c.avg_unit_cycles.unwrap() > 0.0);
    }
}
