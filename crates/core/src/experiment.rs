//! Experiment runner: single runs and parallel sweeps.
//!
//! A [`Sweep`] is a labeled list of `(MachineConfig, RunMode)` points
//! evaluated against shared trace bundles. [`Sweep::run`] fans the
//! points out over OS threads (`std::thread::scope`); every point builds
//! its own machine from scratch against the shared `&TraceBundle`, so
//! the results are *byte-identical* to [`Sweep::run_sequential`] and are
//! returned in input order — parallelism changes wall-clock time only.

use std::sync::atomic::{AtomicUsize, Ordering};

use dbcmp_sim::{Machine, MachineBuilder, MachineConfig, RunMode, SimResult};
use dbcmp_trace::TraceBundle;

/// Simulation windows.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub warmup: u64,
    pub measure: u64,
    /// Bound for completion-mode runs.
    pub max_cycles: u64,
}

impl RunSpec {
    /// The throughput-mode [`RunMode`] for these windows.
    pub fn throughput(self) -> RunMode {
        RunMode::Throughput {
            warmup: self.warmup,
            measure: self.measure,
        }
    }

    /// The completion-mode [`RunMode`] for these windows.
    pub fn completion(self) -> RunMode {
        RunMode::Completion {
            max_cycles: self.max_cycles,
        }
    }
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            warmup: 400_000,
            measure: 1_600_000,
            max_cycles: 400_000_000,
        }
    }
}

/// Saturated-throughput run (the paper's UIPC metric).
pub fn run_throughput(cfg: MachineConfig, bundle: &TraceBundle, spec: RunSpec) -> SimResult {
    Machine::run(cfg, bundle, spec.throughput())
}

/// Run-to-completion (the paper's response-time metric).
pub fn run_completion(cfg: MachineConfig, bundle: &TraceBundle, spec: RunSpec) -> SimResult {
    Machine::run(cfg, bundle, spec.completion())
}

/// One labeled point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub label: String,
    pub cfg: MachineConfig,
    pub mode: RunMode,
}

/// A labeled list of machine-config points evaluated against shared
/// trace bundles, in parallel or sequentially, with results always in
/// input order.
///
/// ```
/// use dbcmp_core::experiment::{RunSpec, Sweep};
/// use dbcmp_core::machines::{fc_cmp, lc_cmp, L2Spec};
/// use dbcmp_workloads::{build_tpch, capture_dss, CaptureOptions, QueryKind, TpchScale};
///
/// // Capture a tiny two-client DSS workload...
/// let (mut db, h) = build_tpch(TpchScale::tiny(), 7);
/// let bundle = capture_dss(&mut db, &h, &[QueryKind::Q6], CaptureOptions::new(2, 1, 7));
///
/// // ...and race the two camps on it; the points fan out across OS
/// // threads, results come back in input order.
/// let spec = RunSpec { warmup: 10_000, measure: 50_000, max_cycles: u64::MAX };
/// let results = Sweep::new()
///     .point("fat", fc_cmp(2, 8 << 20, L2Spec::Cacti), spec.throughput())
///     .point("lean", lc_cmp(2, 8 << 20, L2Spec::Cacti), spec.throughput())
///     .run(&bundle);
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| r.cycles > 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep { points: Vec::new() }
    }

    /// Append one point (builder style).
    pub fn point(mut self, label: impl Into<String>, cfg: MachineConfig, mode: RunMode) -> Self {
        self.push(label, cfg, mode);
        self
    }

    /// Append one point in place.
    pub fn push(&mut self, label: impl Into<String>, cfg: MachineConfig, mode: RunMode) {
        self.points.push(SweepPoint {
            label: label.into(),
            cfg,
            mode,
        });
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Run every point against one shared bundle, in parallel. Results
    /// come back in input order. Panics on an invalid config (configs
    /// are validated up front, before any thread spawns); assemble
    /// points through `MachineBuilder::into_config` to handle
    /// `ConfigError` yourself.
    pub fn run(&self, bundle: &TraceBundle) -> Vec<SimResult> {
        self.run_each(&vec![bundle; self.points.len()])
    }

    /// Worker threads [`Sweep::run`] will use: one per available CPU,
    /// capped at the point count. On a single-CPU host this is 1 and the
    /// parallel entry points degrade to the sequential path (results are
    /// identical either way; only wall-clock differs).
    pub fn default_workers(&self) -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(self.points.len())
    }

    /// Run every point against its own bundle (`bundles[i]` pairs with
    /// point `i` — client-count sweeps replay growing subsets of one
    /// capture), in parallel, results in input order.
    pub fn run_each(&self, bundles: &[&TraceBundle]) -> Vec<SimResult> {
        self.run_each_with_workers(bundles, self.default_workers())
    }

    /// [`Sweep::run_each`] with an explicit worker count — the
    /// equivalence suite pins `workers > 1` so the cross-thread path is
    /// exercised even on single-CPU hosts.
    pub fn run_each_with_workers(
        &self,
        bundles: &[&TraceBundle],
        workers: usize,
    ) -> Vec<SimResult> {
        self.validate_all(bundles);
        let n = self.points.len();
        let workers = workers.min(n);
        if workers <= 1 {
            return self.run_each_sequential(bundles);
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<SimResult>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, run_point(&self.points[i], bundles[i])));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("sweep worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every sweep point produced a result"))
            .collect()
    }

    /// Sequential reference run of the same points — byte-identical to
    /// [`Sweep::run`] (asserted by the equivalence suite), used for
    /// wall-clock comparisons.
    pub fn run_sequential(&self, bundle: &TraceBundle) -> Vec<SimResult> {
        self.run_each_sequential(&vec![bundle; self.points.len()])
    }

    /// Sequential per-point-bundle run (see [`Sweep::run_each`]).
    pub fn run_each_sequential(&self, bundles: &[&TraceBundle]) -> Vec<SimResult> {
        self.validate_all(bundles);
        self.points
            .iter()
            .zip(bundles)
            .map(|(p, b)| run_point(p, b))
            .collect()
    }

    fn validate_all(&self, bundles: &[&TraceBundle]) {
        assert_eq!(
            bundles.len(),
            self.points.len(),
            "one bundle per sweep point"
        );
        for p in &self.points {
            if let Err(e) = p.cfg.validate() {
                panic!("sweep point '{}': invalid machine config: {e}", p.label);
            }
        }
    }
}

/// One keyed sweep point: label, machine, mode, the bundle it replays,
/// and an arbitrary key handed back alongside the result.
pub struct KeyedPoint<'a, K> {
    pub label: String,
    pub cfg: MachineConfig,
    pub mode: RunMode,
    pub bundle: &'a TraceBundle,
    pub key: K,
}

/// Run keyed points as one parallel sweep and return `(key, result)`
/// pairs in input order. The figure generators build their grids this
/// way so the config/bundle/key association is structural — one tuple
/// per point — instead of three positionally-aligned vectors.
pub fn run_keyed<K>(points: Vec<KeyedPoint<'_, K>>) -> Vec<(K, SimResult)> {
    let mut sweep = Sweep::new();
    let mut bundles = Vec::new();
    let mut keys = Vec::new();
    for p in points {
        sweep.push(p.label, p.cfg, p.mode);
        bundles.push(p.bundle);
        keys.push(p.key);
    }
    keys.into_iter().zip(sweep.run_each(&bundles)).collect()
}

fn run_point(p: &SweepPoint, bundle: &TraceBundle) -> SimResult {
    MachineBuilder::from_config(p.cfg.clone(), p.mode)
        .build(bundle)
        .expect("validated above")
        .execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{fc_cmp, lc_cmp, L2Spec};
    use crate::taxonomy::WorkloadKind;
    use crate::workload::{CapturedWorkload, FigScale};

    #[test]
    fn throughput_and_completion_run() {
        let scale = FigScale::quick();
        let w = CapturedWorkload::unsaturated(WorkloadKind::Dss, &scale);
        let cfg = fc_cmp(1, 1 << 20, L2Spec::Cacti);
        let spec = RunSpec {
            warmup: 10_000,
            measure: 50_000,
            max_cycles: 100_000_000,
        };
        let t = run_throughput(cfg.clone(), &w.bundle, spec);
        assert!(t.instrs > 0);
        let c = run_completion(cfg, &w.bundle, spec);
        assert!(c.units >= 1, "query must complete");
        assert!(c.avg_unit_cycles.unwrap() > 0.0);
    }

    #[test]
    fn parallel_sweep_matches_sequential_in_order() {
        let scale = FigScale::quick();
        let w = CapturedWorkload::saturated(WorkloadKind::Dss, &scale);
        let spec = RunSpec {
            warmup: 5_000,
            measure: 20_000,
            max_cycles: 50_000_000,
        };
        let sweep = Sweep::new()
            .point("fc1", fc_cmp(1, 1 << 20, L2Spec::Cacti), spec.throughput())
            .point("lc1", lc_cmp(1, 1 << 20, L2Spec::Cacti), spec.throughput())
            .point("fc2", fc_cmp(2, 2 << 20, L2Spec::Cacti), spec.completion())
            .point("lc2", lc_cmp(2, 2 << 20, L2Spec::Cacti), spec.completion());
        let par = sweep.run(&w.bundle);
        let seq = sweep.run_sequential(&w.bundle);
        assert_eq!(par.len(), 4);
        assert_eq!(par, seq, "parallel and sequential sweeps must be identical");
        // Order is input order: machine names line up with point labels.
        assert!(par[0].machine.starts_with("FC-CMP 1x"));
        assert!(par[1].machine.starts_with("LC-CMP 1x"));
    }

    #[test]
    #[should_panic(expected = "invalid machine config")]
    fn sweep_rejects_degenerate_point_before_running() {
        let scale = FigScale::quick();
        let w = CapturedWorkload::unsaturated(WorkloadKind::Dss, &scale);
        let mut cfg = fc_cmp(1, 1 << 20, L2Spec::Cacti);
        cfg.n_cores = 0;
        Sweep::new()
            .point("bad", cfg, RunSpec::default().throughput())
            .run(&w.bundle);
    }
}
