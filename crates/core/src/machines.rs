//! Machine presets for the paper's experiments, with L2 latencies from
//! the CACTI model (or pinned, for the fixed-latency sweeps of Fig. 6).

use dbcmp_cacti::l2_latency_cycles;
use dbcmp_sim::{CoreKind, MachineConfig};

use crate::taxonomy::Camp;

/// How to derive the L2 hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Spec {
    /// Realistic latency from the CACTI model for the given size.
    Cacti,
    /// Pinned latency in cycles (the paper's "unrealistically fast"
    /// 4-cycle experiments).
    Fixed(u64),
}

impl L2Spec {
    pub fn latency(self, size: u64) -> u64 {
        match self {
            L2Spec::Cacti => l2_latency_cycles(size),
            L2Spec::Fixed(cyc) => cyc,
        }
    }
}

/// Fat-camp CMP preset.
pub fn fc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::fat_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// Lean-camp CMP preset.
pub fn lc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::lean_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// The §5.2 SMP baseline: one core per node, private L2s.
pub fn smp_baseline(n_nodes: usize, l2_per_node: u64, camp: Camp) -> MachineConfig {
    let core = match camp {
        Camp::Fat => CoreKind::fat(),
        Camp::Lean => CoreKind::lean(),
    };
    MachineConfig::smp(n_nodes, l2_per_node, l2_latency_cycles(l2_per_node), core)
}

/// Camp-selecting preset.
pub fn cmp_for(camp: Camp, n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    match camp {
        Camp::Fat => fc_cmp(n_cores, l2_size, l2),
        Camp::Lean => lc_cmp(n_cores, l2_size, l2),
    }
}

/// Asymmetric CMP preset: `fat_slots` fat cores followed by `lean_slots`
/// lean cores sharing one L2 — the heterogeneous design point of Porobic
/// et al.'s hardware islands and the wimpy/brawny trade-off (PAPERS.md).
/// Slot count stands in for area (one slot = one core footprint); the L2
/// stays fixed across the `fig_asym` ratio sweep so only the core mix
/// moves. Pure-camp calls reduce exactly to [`fc_cmp`]/[`lc_cmp`]
/// (store-buffer depth follows the lean preset when no fat slot is
/// present; mixed machines keep the fat-camp depth for every context).
pub fn asym_cmp(fat_slots: usize, lean_slots: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    let n = fat_slots + lean_slots;
    let mut c = fc_cmp(n, l2_size, l2);
    c.name = format!(
        "ASYM {fat_slots}F+{lean_slots}L (L2 {} MB, {} cyc)",
        l2_size >> 20,
        l2.latency(l2_size)
    );
    let mut slots = vec![CoreKind::fat(); fat_slots];
    slots.extend(std::iter::repeat_n(CoreKind::lean(), lean_slots));
    c.slots = slots;
    if fat_slots == 0 {
        // Match the lean-camp preset exactly at the pure-lean endpoint.
        c.core = CoreKind::lean();
        c.store_buffer = 4;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacti_latency_exceeds_fixed_four() {
        let real = fc_cmp(4, 16 << 20, L2Spec::Cacti);
        let fast = fc_cmp(4, 16 << 20, L2Spec::Fixed(4));
        assert!(real.l2.geom().latency > fast.l2.geom().latency);
        assert_eq!(fast.l2.geom().latency, 4);
    }

    #[test]
    fn asym_preset_slots_and_pure_endpoints() {
        let mixed = asym_cmp(3, 1, 16 << 20, L2Spec::Cacti);
        assert_eq!(mixed.n_cores, 4);
        assert_eq!(mixed.slots.len(), 4);
        assert_eq!(mixed.total_contexts(), 3 + 4);
        mixed.validate().expect("asym preset must validate");

        // Pure endpoints equal the camp presets in everything but name
        // and the (behaviorally equivalent) explicit slot list.
        let fat = asym_cmp(4, 0, 16 << 20, L2Spec::Cacti);
        let mut fc = fc_cmp(4, 16 << 20, L2Spec::Cacti);
        fc.name = fat.name.clone();
        fc.slots = fat.slots.clone();
        assert_eq!(fat, fc);
        let lean = asym_cmp(0, 4, 16 << 20, L2Spec::Cacti);
        let mut lc = lc_cmp(4, 16 << 20, L2Spec::Cacti);
        lc.name = lean.name.clone();
        lc.slots = lean.slots.clone();
        assert_eq!(lean, lc);
    }

    #[test]
    fn camps_share_memory_system() {
        let f = cmp_for(Camp::Fat, 4, 8 << 20, L2Spec::Cacti);
        let l = cmp_for(Camp::Lean, 4, 8 << 20, L2Spec::Cacti);
        assert_eq!(f.l2.geom(), l.l2.geom());
        assert_eq!(f.mem_latency, l.mem_latency);
    }
}
