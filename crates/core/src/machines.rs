//! Machine presets for the paper's experiments, with L2 latencies from
//! the CACTI model (or pinned, for the fixed-latency sweeps of Fig. 6).

use dbcmp_cacti::l2_latency_cycles;
use dbcmp_sim::{CoreKind, MachineConfig};

use crate::taxonomy::Camp;

/// How to derive the L2 hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Spec {
    /// Realistic latency from the CACTI model for the given size.
    Cacti,
    /// Pinned latency in cycles (the paper's "unrealistically fast"
    /// 4-cycle experiments).
    Fixed(u64),
}

impl L2Spec {
    pub fn latency(self, size: u64) -> u64 {
        match self {
            L2Spec::Cacti => l2_latency_cycles(size),
            L2Spec::Fixed(cyc) => cyc,
        }
    }
}

/// Fat-camp CMP preset.
pub fn fc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::fat_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// Lean-camp CMP preset.
pub fn lc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::lean_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// The §5.2 SMP baseline: one core per node, private L2s.
pub fn smp_baseline(n_nodes: usize, l2_per_node: u64, camp: Camp) -> MachineConfig {
    let core = match camp {
        Camp::Fat => CoreKind::fat(),
        Camp::Lean => CoreKind::lean(),
    };
    MachineConfig::smp(n_nodes, l2_per_node, l2_latency_cycles(l2_per_node), core)
}

/// Camp-selecting preset.
pub fn cmp_for(camp: Camp, n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    match camp {
        Camp::Fat => fc_cmp(n_cores, l2_size, l2),
        Camp::Lean => lc_cmp(n_cores, l2_size, l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacti_latency_exceeds_fixed_four() {
        let real = fc_cmp(4, 16 << 20, L2Spec::Cacti);
        let fast = fc_cmp(4, 16 << 20, L2Spec::Fixed(4));
        assert!(real.l2.geom().latency > fast.l2.geom().latency);
        assert_eq!(fast.l2.geom().latency, 4);
    }

    #[test]
    fn camps_share_memory_system() {
        let f = cmp_for(Camp::Fat, 4, 8 << 20, L2Spec::Cacti);
        let l = cmp_for(Camp::Lean, 4, 8 << 20, L2Spec::Cacti);
        assert_eq!(f.l2.geom(), l.l2.geom());
        assert_eq!(f.mem_latency, l.mem_latency);
    }
}
