//! Machine presets for the paper's experiments, with L2/L3 latencies
//! from the CACTI model (or pinned, for the fixed-latency sweeps of
//! Fig. 6). The island presets walk the continuum between the paper's
//! two fixed shapes: [`island_cmp`] re-partitions one total L2 capacity
//! from chip-shared to fully private, and the `*_l3` variants hang a
//! model-derived shared L3 behind private L2s.

use dbcmp_cacti::{l2_latency_cycles, l3_latency_cycles};
use dbcmp_sim::{CacheGeom, CacheTopology, CoreKind, LevelSpec, MachineConfig, SharedBy};

use crate::taxonomy::Camp;

/// How to derive the L2 hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Spec {
    /// Realistic latency from the CACTI model for the given size.
    Cacti,
    /// Pinned latency in cycles (the paper's "unrealistically fast"
    /// 4-cycle experiments).
    Fixed(u64),
}

impl L2Spec {
    pub fn latency(self, size: u64) -> u64 {
        match self {
            L2Spec::Cacti => l2_latency_cycles(size),
            L2Spec::Fixed(cyc) => cyc,
        }
    }
}

/// Fat-camp CMP preset.
pub fn fc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::fat_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// Lean-camp CMP preset.
pub fn lc_cmp(n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    MachineConfig::lean_cmp(n_cores, l2_size, l2.latency(l2_size))
}

/// The §5.2 SMP baseline: one core per node, private L2s.
pub fn smp_baseline(n_nodes: usize, l2_per_node: u64, camp: Camp) -> MachineConfig {
    let core = match camp {
        Camp::Fat => CoreKind::fat(),
        Camp::Lean => CoreKind::lean(),
    };
    MachineConfig::smp(n_nodes, l2_per_node, l2_latency_cycles(l2_per_node), core)
}

/// Camp-selecting preset.
pub fn cmp_for(camp: Camp, n_cores: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    match camp {
        Camp::Fat => fc_cmp(n_cores, l2_size, l2),
        Camp::Lean => lc_cmp(n_cores, l2_size, l2),
    }
}

/// Asymmetric CMP preset: `fat_slots` fat cores followed by `lean_slots`
/// lean cores sharing one L2 — the heterogeneous design point of Porobic
/// et al.'s hardware islands and the wimpy/brawny trade-off (PAPERS.md).
/// Slot count stands in for area (one slot = one core footprint); the L2
/// stays fixed across the `fig_asym` ratio sweep so only the core mix
/// moves. Pure-camp calls reduce exactly to [`fc_cmp`]/[`lc_cmp`]
/// (store-buffer depth follows the lean preset when no fat slot is
/// present; mixed machines keep the fat-camp depth for every context).
pub fn asym_cmp(fat_slots: usize, lean_slots: usize, l2_size: u64, l2: L2Spec) -> MachineConfig {
    let n = fat_slots + lean_slots;
    let mut c = fc_cmp(n, l2_size, l2);
    c.name = format!(
        "ASYM {fat_slots}F+{lean_slots}L (L2 {} MB, {} cyc)",
        l2_size >> 20,
        l2.latency(l2_size)
    );
    let mut slots = vec![CoreKind::fat(); fat_slots];
    slots.extend(std::iter::repeat_n(CoreKind::lean(), lean_slots));
    c.slots = slots;
    if fat_slots == 0 {
        // Match the lean-camp preset exactly at the pure-lean endpoint.
        c.core = CoreKind::lean();
        c.store_buffer = 4;
    }
    c
}

/// Hardware-islands preset: `clusters` islands of `cores_per_cluster`
/// fat cores, the **fixed** `total_l2` capacity split evenly across the
/// islands, per-island latency from the CACTI model for the island's
/// share. The pure endpoints reduce numerically to the Fig. 7 presets:
/// one cluster of all cores is [`fc_cmp`] (chip-shared L2), and
/// one-core islands are [`smp_baseline`] (private L2s, off-chip
/// snooping). In between, islands keep their internal traffic on chip
/// and snoop each other off chip — the continuum of "OLTP on Hardware
/// Islands" (PAPERS.md). The chip's four L2 bank ports are split across
/// the islands (each island keeps at least one).
pub fn island_cmp(
    clusters: usize,
    cores_per_cluster: usize,
    total_l2: u64,
    l2: L2Spec,
) -> MachineConfig {
    let clusters = clusters.max(1);
    let n = clusters * cores_per_cluster;
    let per_island = total_l2 / clusters as u64;
    let lat = l2.latency(per_island);
    let mut c = MachineConfig::fat_cmp(n, per_island, lat);
    c.topology = CacheTopology::new(vec![LevelSpec::new(
        CacheGeom::new(per_island, 16, lat),
        SharedBy::Cluster(cores_per_cluster),
    )
    .banks((4 / clusters).max(1), 2)]);
    c.name = format!(
        "ISLAND {clusters}x{cores_per_cluster} (L2 {} MB/island, {} cyc)",
        per_island >> 20,
        lat
    );
    c
}

/// L3 variant of the camp presets: per-core private L2s of
/// `l2_per_core` bytes behind one chip-shared L3 of `l3_size` bytes,
/// both latencies derived from the CACTI model (`l3_latency_cycles`
/// instead of a hand-pinned constant). Cross-core dirty transfers ride
/// the L3 directory, so `l1_to_l1` follows the L3 latency.
pub fn cmp_l3(camp: Camp, n_cores: usize, l2_per_core: u64, l3_size: u64) -> MachineConfig {
    let l2_lat = l2_latency_cycles(l2_per_core);
    let l3_lat = l3_latency_cycles(l3_size);
    let mut c = cmp_for(camp, n_cores, l2_per_core, L2Spec::Fixed(l2_lat));
    c.topology = CacheTopology::private_l2(CacheGeom::new(l2_per_core, 16, l2_lat))
        .with_l3(CacheGeom::new(l3_size, 16, l3_lat));
    c.l1_to_l1 = l3_lat + 6;
    c.name = format!(
        "{}-CMP {n_cores}x (L2 {} MB/core + L3 {} MB, {l2_lat}/{l3_lat} cyc)",
        match camp {
            Camp::Fat => "FC-L3",
            Camp::Lean => "LC-L3",
        },
        l2_per_core >> 20,
        l3_size >> 20
    );
    c
}

/// Fat-camp L3 preset (see [`cmp_l3`]).
pub fn fc_cmp_l3(n_cores: usize, l2_per_core: u64, l3_size: u64) -> MachineConfig {
    cmp_l3(Camp::Fat, n_cores, l2_per_core, l3_size)
}

/// Lean-camp L3 preset (see [`cmp_l3`]).
pub fn lc_cmp_l3(n_cores: usize, l2_per_core: u64, l3_size: u64) -> MachineConfig {
    cmp_l3(Camp::Lean, n_cores, l2_per_core, l3_size)
}

/// Islands with an on-chip safety net: `clusters` islands of
/// `cores_per_cluster` fat cores (total L2 capacity split as in
/// [`island_cmp`]) behind one chip-shared L3, which turns the
/// cross-island coherence misses back into on-chip hits.
pub fn island_cmp_l3(
    clusters: usize,
    cores_per_cluster: usize,
    total_l2: u64,
    l3_size: u64,
) -> MachineConfig {
    let mut c = island_cmp(clusters, cores_per_cluster, total_l2, L2Spec::Cacti);
    let l3_lat = l3_latency_cycles(l3_size);
    c.topology = c.topology.with_l3(CacheGeom::new(l3_size, 16, l3_lat));
    c.l1_to_l1 = l3_lat + 6;
    c.name = format!(
        "ISLAND {clusters}x{cores_per_cluster}+L3 (L2 {} MB/island, L3 {} MB)",
        (total_l2 / clusters.max(1) as u64) >> 20,
        l3_size >> 20
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacti_latency_exceeds_fixed_four() {
        let real = fc_cmp(4, 16 << 20, L2Spec::Cacti);
        let fast = fc_cmp(4, 16 << 20, L2Spec::Fixed(4));
        assert!(real.l2_geom().latency > fast.l2_geom().latency);
        assert_eq!(fast.l2_geom().latency, 4);
    }

    #[test]
    fn asym_preset_slots_and_pure_endpoints() {
        let mixed = asym_cmp(3, 1, 16 << 20, L2Spec::Cacti);
        assert_eq!(mixed.n_cores, 4);
        assert_eq!(mixed.slots.len(), 4);
        assert_eq!(mixed.total_contexts(), 3 + 4);
        mixed.validate().expect("asym preset must validate");

        // Pure endpoints equal the camp presets in everything but name
        // and the (behaviorally equivalent) explicit slot list.
        let fat = asym_cmp(4, 0, 16 << 20, L2Spec::Cacti);
        let mut fc = fc_cmp(4, 16 << 20, L2Spec::Cacti);
        fc.name = fat.name.clone();
        fc.slots = fat.slots.clone();
        assert_eq!(fat, fc);
        let lean = asym_cmp(0, 4, 16 << 20, L2Spec::Cacti);
        let mut lc = lc_cmp(4, 16 << 20, L2Spec::Cacti);
        lc.name = lean.name.clone();
        lc.slots = lean.slots.clone();
        assert_eq!(lean, lc);
    }

    #[test]
    fn camps_share_memory_system() {
        let f = cmp_for(Camp::Fat, 4, 8 << 20, L2Spec::Cacti);
        let l = cmp_for(Camp::Lean, 4, 8 << 20, L2Spec::Cacti);
        assert_eq!(f.l2_geom(), l.l2_geom());
        assert_eq!(f.mem_latency, l.mem_latency);
    }

    /// The island preset's pure endpoints carry exactly the Fig. 7
    /// presets' parameters (everything but the name and the — behaviorally
    /// normalized — `SharedBy` spelling).
    #[test]
    fn island_endpoints_parameterize_like_fig7_presets() {
        let total = 16u64 << 20;
        // One island of four cores == the shared-L2 CMP.
        let shared = island_cmp(1, 4, total, L2Spec::Cacti);
        let fc = fc_cmp(4, total, L2Spec::Cacti);
        shared.validate().expect("valid");
        assert_eq!(shared.l2_geom(), fc.l2_geom());
        assert_eq!(shared.topology.innermost().banks, 4);
        assert_eq!(shared.l1_to_l1, fc.l1_to_l1);
        assert_eq!(
            shared.topology.innermost().shared_by,
            SharedBy::Cluster(4),
            "spelled as a 4-core cluster, normalized to chip-shared"
        );
        // Four one-core islands == the SMP baseline at the same total.
        let private = island_cmp(4, 1, total, L2Spec::Cacti);
        let smp = smp_baseline(4, 4 << 20, Camp::Fat);
        private.validate().expect("valid");
        assert_eq!(private.l2_geom(), smp.l2_geom());
        assert_eq!(private.topology.innermost().banks, 1);
        assert_eq!(private.l1_to_l1, smp.l1_to_l1);
        assert_eq!(private.coherence_latency, smp.coherence_latency);
        // The middle point: per-island capacity between the extremes.
        let mid = island_cmp(2, 2, total, L2Spec::Cacti);
        mid.validate().expect("valid");
        assert_eq!(mid.l2_geom().size, 8 << 20);
        assert_eq!(mid.topology.innermost().banks, 2);
    }

    #[test]
    fn l3_presets_use_model_latencies() {
        let c = fc_cmp_l3(4, 1 << 20, 16 << 20);
        c.validate().expect("valid two-level preset");
        assert_eq!(c.topology.depth(), 2);
        assert_eq!(c.topology.innermost().shared_by, SharedBy::Core);
        assert_eq!(c.topology.outermost().shared_by, SharedBy::Chip);
        assert_eq!(
            c.topology.outermost().geom.latency,
            dbcmp_cacti::l3_latency_cycles(16 << 20),
            "L3 latency comes from the model, not a pinned constant"
        );
        assert!(c.topology.outermost().geom.latency > c.topology.innermost().geom.latency);
        let lean = lc_cmp_l3(4, 1 << 20, 16 << 20);
        assert_eq!(lean.store_buffer, 4, "lean camp keeps its store buffer");
        let isl = island_cmp_l3(2, 2, 8 << 20, 16 << 20);
        isl.validate().expect("valid island+L3 preset");
        assert_eq!(isl.topology.depth(), 2);
        assert_eq!(isl.topology.innermost().shared_by, SharedBy::Cluster(2));
    }
}
