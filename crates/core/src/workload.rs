//! Workload capture for the experiments: builds the databases, runs
//! client sessions, and caches the resulting trace bundles.

use dbcmp_engine::{CcBackend, CcStats};
use dbcmp_trace::{TraceBundle, TraceSummary};
use dbcmp_workloads::{
    build_tpcc, build_tpch, capture_dss, capture_oltp, capture_oltp_interleaved, CaptureOptions,
    ContentionStats, InterleaveOptions, QueryKind, TpccScale, TpchScale,
};

use crate::taxonomy::WorkloadKind;

/// Experiment sizing. `paper()` approximates the paper's setup scaled to
/// simulation-friendly trace lengths; `quick()` is for tests.
#[derive(Debug, Clone, Copy)]
pub struct FigScale {
    pub tpcc: TpccScale,
    pub tpch: TpchScale,
    /// Saturated client counts (paper: 64 OLTP / 16 DSS).
    pub oltp_clients: usize,
    pub dss_clients: usize,
    /// Work units per client in captures.
    pub oltp_units: usize,
    pub dss_units: usize,
    /// Simulation windows (cycles).
    pub warmup: u64,
    pub measure: u64,
    pub seed: u64,
    /// Interleaved-capture clients for the contention sweep
    /// (`fig_contention`).
    pub contention_clients: usize,
    /// Units per client in contended captures.
    pub contention_units: usize,
    /// Hot NewOrder item-pool size under skew.
    pub hot_items: u64,
    /// Engine ops per scheduler grant in interleaved captures.
    pub slice_ops: usize,
}

impl FigScale {
    /// The default experiment scale (used by the harness binaries).
    pub fn paper() -> Self {
        FigScale {
            tpcc: TpccScale::default(),
            tpch: TpchScale::default(),
            oltp_clients: 32,
            dss_clients: 16,
            oltp_units: 25,
            dss_units: 2,
            warmup: 1_200_000,
            measure: 2_400_000,
            seed: 0xC1D7,
            contention_clients: 16,
            contention_units: 12,
            hot_items: 8,
            slice_ops: 1,
        }
    }

    /// Small scale for integration tests.
    pub fn quick() -> Self {
        FigScale {
            tpcc: TpccScale::tiny(),
            tpch: TpchScale::tiny(),
            oltp_clients: 16,
            dss_clients: 16,
            oltp_units: 8,
            dss_units: 1,
            warmup: 200_000,
            measure: 400_000,
            seed: 0xC1D7,
            contention_clients: 8,
            contention_units: 10,
            hot_items: 8,
            slice_ops: 1,
        }
    }
}

/// A captured workload: the bundle plus its summary statistics.
pub struct CapturedWorkload {
    pub kind: WorkloadKind,
    pub bundle: TraceBundle,
    pub summary: TraceSummary,
}

impl CapturedWorkload {
    /// Capture a saturated OLTP mix (`clients` terminals).
    pub fn oltp(scale: &FigScale, clients: usize, units: usize) -> Self {
        let (mut db, h) = build_tpcc(scale.tpcc, scale.seed);
        let bundle = capture_oltp(&mut db, &h, CaptureOptions::new(clients, units, scale.seed));
        let summary = TraceSummary::compute(&bundle.regions, &bundle.threads);
        CapturedWorkload {
            kind: WorkloadKind::Oltp,
            bundle,
            summary,
        }
    }

    /// Capture an OLTP mix with *interleaved* clients against one shared
    /// database: real 2PL waits, wakes, and deadlock aborts in the traces.
    /// `hot_pct` percent of transactions target the hot warehouse/items
    /// (the contention knob). Returns the capture plus what the lock
    /// manager actually did.
    pub fn oltp_contended(scale: &FigScale, hot_pct: u8) -> (Self, ContentionStats) {
        let (cap, stats, _) = Self::oltp_contended_cc(scale, hot_pct, CcBackend::Centralized2PL);
        (cap, stats)
    }

    /// [`oltp_contended`](Self::oltp_contended) with an explicit
    /// concurrency-control backend (the `fig_cc` sweep's software axis).
    /// Also returns the backend's own counters. The default backend takes
    /// exactly the [`oltp_contended`](Self::oltp_contended) path — same
    /// options, same draws — so its captures are byte-identical.
    pub fn oltp_contended_cc(
        scale: &FigScale,
        hot_pct: u8,
        backend: CcBackend,
    ) -> (Self, ContentionStats, CcStats) {
        let (db, h) = build_tpcc(scale.tpcc, scale.seed);
        let opt = InterleaveOptions {
            clients: scale.contention_clients,
            units_per_client: scale.contention_units,
            seed: scale.seed,
            slice_ops: scale.slice_ops,
            hot_pct,
            hot_items: scale.hot_items,
            backend: CcBackend::Centralized2PL,
            draws: dbcmp_workloads::DrawScheme::Legacy,
        }
        .with_backend(backend);
        let cap = capture_oltp_interleaved(db, &h, opt);
        let summary = TraceSummary::compute(&cap.bundle.regions, &cap.bundle.threads);
        (
            CapturedWorkload {
                kind: WorkloadKind::Oltp,
                bundle: cap.bundle,
                summary,
            },
            cap.stats,
            cap.cc,
        )
    }

    /// One DSS capture path for every query mix — the public `dss*`
    /// constructors differ *only* in the mix they pass here, so their
    /// databases, seeds, and client structures stay identical by
    /// construction.
    fn dss_mix(mix: &[QueryKind], scale: &FigScale, clients: usize, units: usize) -> Self {
        let (mut db, h) = build_tpch(scale.tpch, scale.seed);
        let bundle = capture_dss(
            &mut db,
            &h,
            mix,
            CaptureOptions::new(clients, units, scale.seed),
        );
        let summary = TraceSummary::compute(&bundle.regions, &bundle.threads);
        CapturedWorkload {
            kind: WorkloadKind::Dss,
            bundle,
            summary,
        }
    }

    /// Capture a DSS query stream (`clients` sessions over the paper's
    /// four-query mix).
    pub fn dss(scale: &FigScale, clients: usize, units: usize) -> Self {
        Self::dss_mix(&QueryKind::ALL, scale, clients, units)
    }

    /// Capture a **join-heavy** DSS query stream: the Q3/Q5 mix
    /// ([`QueryKind::JOINS`]) whose hash builds and index-nested-loop
    /// descents — not scan bandwidth — set the cache behaviour. Same
    /// database, seed, and client structure as [`Self::dss`], so the two
    /// captures differ only in query shape (what `fig_joins` contrasts).
    pub fn dss_joins(scale: &FigScale, clients: usize, units: usize) -> Self {
        Self::dss_mix(&QueryKind::JOINS, scale, clients, units)
    }

    /// Saturated capture at the scale's default client count.
    pub fn saturated(kind: WorkloadKind, scale: &FigScale) -> Self {
        match kind {
            WorkloadKind::Oltp => Self::oltp(scale, scale.oltp_clients, scale.oltp_units),
            WorkloadKind::Dss => Self::dss(scale, scale.dss_clients, scale.dss_units),
        }
    }

    /// Unsaturated capture: a single client (the paper's single-thread
    /// configuration, intra-query parallelism disabled).
    pub fn unsaturated(kind: WorkloadKind, scale: &FigScale) -> Self {
        match kind {
            WorkloadKind::Oltp => Self::oltp(scale, 1, scale.oltp_units),
            WorkloadKind::Dss => Self::dss(scale, 1, scale.dss_units),
        }
    }

    /// A bundle restricted to the first `n` client threads (client-count
    /// sweeps reuse one capture).
    pub fn subset(&self, n: usize) -> TraceBundle {
        TraceBundle::new(
            self.bundle.regions.clone(),
            self.bundle.threads[..n.min(self.bundle.threads.len())].to_vec(),
        )
    }

    /// Analytic workload statistics for the Fig. 3 reference model.
    pub fn analytic_stats(&self) -> dbcmp_sim::analytic::WorkloadStats {
        let s = &self.summary;
        let accesses = (s.loads + s.stores).max(1);
        dbcmp_sim::analytic::WorkloadStats {
            dep_load_fraction: s.dep_load_fraction(),
            store_fraction: s.stores as f64 / accesses as f64,
            // Weighted by the engine's region mix; a mid-range value.
            mispred_per_kinstr: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_captures_have_expected_thread_counts() {
        let scale = FigScale::quick();
        let oltp = CapturedWorkload::saturated(WorkloadKind::Oltp, &scale);
        assert_eq!(oltp.bundle.threads.len(), scale.oltp_clients);
        let uns = CapturedWorkload::unsaturated(WorkloadKind::Dss, &scale);
        assert_eq!(uns.bundle.threads.len(), 1);
        let sub = oltp.subset(3);
        assert_eq!(sub.threads.len(), 3);
    }
}
