//! `dbcmp-core` — the characterization framework.
//!
//! Ties the substrates together into the paper's experiments: the
//! CMP-camp/workload [taxonomy] (§2), [machine presets](machines)
//! built on CACTI latencies (§3), workload capture, the
//! [experiment runner](experiment), and one generator per paper
//! figure/table in [figures].

#![forbid(unsafe_code)]
pub mod deploy;
pub mod experiment;
pub mod figures;
pub mod machines;
pub mod network;
pub mod report;
pub mod taxonomy;
pub mod workload;

pub use deploy::{deploy_capture, deploy_instance_counts, fig_deploy, DeployPoint};
pub use experiment::{run_completion, run_throughput, RunSpec, Sweep, SweepPoint};
pub use machines::{
    asym_cmp, cmp_l3, fc_cmp, fc_cmp_l3, island_cmp, island_cmp_l3, lc_cmp, lc_cmp_l3,
    smp_baseline, L2Spec,
};
pub use network::{fig_network, network_capture, network_presets, network_spec, NetworkPoint};
pub use taxonomy::{Camp, Saturation, WorkloadKind};
pub use workload::{CapturedWorkload, FigScale};
