//! Shared-nothing deployment sweep: the same silicon budget spent as one
//! fat shared-everything engine, one engine per island, or one engine
//! per core — with a knob for how often transactions span partitions.
//!
//! Where `fig_islands` re-partitions the *cache* under one engine (all
//! cores still share one database), `fig_deploy` re-partitions the
//! *database*: `N` instances each own `W/N` warehouses, run on their own
//! `cores/N`-core chip with `L2/N` of cache, and exchange two-phase
//! messages over an [`Interconnect`](dbcmp_sim::Interconnect) when a
//! transaction spans instances. The sweep captures with the lock-table
//! contention model on (`DeployOptions::contention`), so the shared-
//! everything endpoint pays for all clients contending on one lock
//! manager while fine partitions run nearly contention-free. At
//! `multi_pct = 0` that is the whole story and finer partitioning wins;
//! as `multi_pct` grows, per-core shared-nothing pays two interconnect
//! round trips plus cold remote lines on every crossing while coarser
//! islands absorb the same transactions locally — the "OLTP on Hardware
//! Islands" tradeoff.
//!
//! The throughput metric is `units`: every instance replays the same
//! fixed cycle window, so committed units summed across instances are
//! directly comparable between deployments (UIPC is not — the captures
//! differ in per-transaction instruction counts by design, so
//! instructions per cycle no longer proxies work per cycle).

use dbcmp_sim::{RemoteCounters, SimResult};
use dbcmp_workloads::{
    capture_oltp_deployment_workers, CaptureOptions, DeployOptions, DeployStats, Deployment,
    DrawScheme, TpccScale,
};

use crate::experiment::{RunSpec, Sweep};
use crate::figures::island_cluster_sizes;
use crate::machines::{fc_cmp, L2Spec};
use crate::workload::FigScale;

/// One point of the deployment sweep: `instances` engines at a fixed
/// total core/L2 budget, captured with `multi_pct`% multi-warehouse
/// transactions and replayed one chip per instance.
pub struct DeployPoint {
    pub instances: usize,
    pub cores_per_instance: usize,
    pub l2_per_instance: u64,
    pub multi_pct: u8,
    /// Aggregate UIPC (diagnostic only — see the module docs for why
    /// `units` is the cross-deployment throughput metric).
    pub uipc: f64,
    /// Committed units across all instances' identical measure windows:
    /// the deployment's throughput.
    pub units: u64,
    /// Interconnect traffic summed over the instances' replays.
    pub remote: RemoteCounters,
    /// Capture-side transaction classification.
    pub stats: DeployStats,
    /// Per-instance replay results, instance order.
    pub per_instance: Vec<SimResult>,
}

/// Instance counts swept at a given core budget: the island divisor
/// chain read the other way — one fat instance, one per island size,
/// one per core.
pub fn deploy_instance_counts(cores: usize) -> Vec<usize> {
    island_cluster_sizes(cores)
        .into_iter()
        .map(|k| cores / k)
        .collect()
}

/// The TPC-C scale a deployment sweep captures at: at least one
/// warehouse per core, so every instance count in the divisor chain
/// partitions evenly (and the per-core endpoint owns ≥ 1 warehouse).
pub fn deploy_tpcc_scale(scale: &FigScale, total_cores: usize) -> TpccScale {
    let mut t = scale.tpcc;
    t.warehouses = t.warehouses.max(total_cores as u64);
    t
}

/// Capture one deployment at this sweep's conventions (exposed so the
/// smoke gate can rebuild a point's bundles deterministically).
pub fn deploy_capture(
    scale: &FigScale,
    total_cores: usize,
    instances: usize,
    multi_pct: u8,
) -> Deployment {
    let opt = DeployOptions {
        capture: CaptureOptions::new(scale.oltp_clients, scale.oltp_units, scale.seed),
        partitions: instances,
        multi_pct,
        contention: true,
        draws: DrawScheme::PerTxn,
    };
    capture_oltp_deployment_workers(deploy_tpcc_scale(scale, total_cores), opt, instances)
        .expect("deployment windows fit the address space")
}

/// The deployment sweep: for each `multi_pct`, capture and replay every
/// instance count in the divisor chain at a fixed total core/L2 budget.
/// Instances replay on their own fat-camp chip (`fc_cmp` of the
/// instance's share, CACTI latency) as one parallel sweep per point.
pub fn fig_deploy(
    scale: &FigScale,
    total_cores: usize,
    total_l2: u64,
    multi_pcts: &[u8],
) -> Vec<DeployPoint> {
    let spec = RunSpec {
        warmup: scale.warmup,
        measure: scale.measure,
        max_cycles: 2_000_000_000,
    };
    let mut out = Vec::new();
    for &multi_pct in multi_pcts {
        for instances in deploy_instance_counts(total_cores) {
            let dep = deploy_capture(scale, total_cores, instances, multi_pct);
            let cores = total_cores / instances;
            let l2 = total_l2 / instances as u64;
            let mut sweep = Sweep::new();
            let mut bundles = Vec::new();
            for (i, b) in dep.bundles.iter().enumerate() {
                sweep.push(
                    format!("multi={multi_pct}% {instances}x{cores}c #{i}"),
                    fc_cmp(cores, l2, L2Spec::Cacti),
                    spec.throughput(),
                );
                bundles.push(b);
            }
            let per_instance = sweep.run_each(&bundles);
            let mut remote = RemoteCounters::default();
            for r in &per_instance {
                remote.merge(&r.remote);
            }
            out.push(DeployPoint {
                instances,
                cores_per_instance: cores,
                l2_per_instance: l2,
                multi_pct,
                uipc: per_instance.iter().map(|r| r.uipc()).sum(),
                units: per_instance.iter().map(|r| r.units).sum(),
                remote,
                stats: dep.stats,
                per_instance,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_counts_mirror_island_divisors() {
        assert_eq!(deploy_instance_counts(4), [1, 2, 4]);
        assert_eq!(deploy_instance_counts(8), [1, 2, 4, 8]);
        for cores in 1..=8 {
            let counts = deploy_instance_counts(cores);
            assert_eq!(counts.first(), Some(&1), "shared-everything endpoint");
            assert_eq!(counts.last(), Some(&cores), "one-per-core endpoint");
            assert!(counts.iter().all(|n| cores % n == 0));
        }
    }

    #[test]
    fn deploy_scale_guarantees_divisibility() {
        let scale = FigScale::quick();
        let t = deploy_tpcc_scale(&scale, 4);
        assert!(t.warehouses >= 4);
        for n in deploy_instance_counts(4) {
            assert_eq!(t.warehouses % n as u64, 0);
        }
    }
}
