//! Instruction code regions.
//!
//! A *code region* stands in for a body of DBMS code (the lock manager, the
//! B+Tree search routine, the scan inner loop, …). Each region has a byte
//! `footprint`; when a thread executes `Exec { region, instrs }` the
//! simulator walks that thread's private cursor through the region's
//! address range, wrapping at the end, fetching one 4-byte instruction per
//! retired instruction.
//!
//! The effect is that the L1-I working set of a workload is the sum of the
//! footprints of the regions it cycles through — several hundred KB for an
//! OLTP transaction path (≫ typical 64 KB L1-I caches, hence instruction
//! misses), and a few tens of KB for DSS scan loops (which fit).
//!
//! Regions also carry a branch-misprediction rate (mispredictions per 1000
//! instructions); the core models charge a pipeline-depth penalty per
//! misprediction into the "other stalls" bucket, mirroring the small
//! non-memory stall component of the paper's breakdowns.

/// Dense region identifier (max 1024 regions; fits the event encoding).
pub type RegionId = u16;

/// Instructions are fixed 4 bytes (UltraSPARC-style ISA, as in the paper's
/// simulated machines).
pub const INSTR_BYTES: u64 = 4;

/// Base of the instruction address space: bit 47 set, so I-addresses and
/// D-addresses never collide (data is capped at 2^46).
pub const CODE_BASE: u64 = 1 << 47;

/// One named region of simulated code.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeRegion {
    /// Dense registry index.
    pub id: RegionId,
    /// Subsystem name ("lock-manager", "exec-scan", …).
    pub name: &'static str,
    /// Base address in the instruction address space (page aligned).
    pub base: u64,
    /// Footprint in bytes (rounded up to a cache line).
    pub footprint: u64,
    /// Branch mispredictions per 1000 instructions executed in this region.
    pub mispred_per_kinstr: f64,
}

/// Registry of code regions for one captured system. Region IDs are dense
/// indices into the registry, in creation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeRegions {
    regions: Vec<CodeRegion>,
}

impl CodeRegions {
    /// An empty registry.
    pub fn new() -> Self {
        CodeRegions {
            regions: Vec::new(),
        }
    }

    /// Register a region with the given byte `footprint` and misprediction
    /// rate. Footprints are rounded up to a whole cache line. Panics when
    /// the 10-bit region id space is exhausted.
    pub fn add(&mut self, name: &'static str, footprint: u64, mispred_per_kinstr: f64) -> RegionId {
        assert!(self.regions.len() < 1024, "region id space exhausted");
        let id = self.regions.len() as RegionId;
        let footprint = footprint.max(64).div_ceil(64) * 64;
        // Regions are placed on 4 KB boundaries with a guard page between
        // them so that prefetching past the end of one region never pulls
        // another region's lines.
        let base = match self.regions.last() {
            Some(prev) => (prev.base + prev.footprint + 8192).div_ceil(4096) * 4096,
            None => CODE_BASE,
        };
        self.regions.push(CodeRegion {
            id,
            name,
            base,
            footprint,
            mispred_per_kinstr,
        });
        id
    }

    /// Look up a region by id (panics on an unknown id — region ids come
    /// from this registry).
    #[inline]
    pub fn get(&self, id: RegionId) -> &CodeRegion {
        &self.regions[id as usize]
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterate over the registered regions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CodeRegion> {
        self.regions.iter()
    }

    /// Total instruction footprint over a set of regions — the L1-I working
    /// set of a workload that cycles through all of them.
    pub fn footprint_of(&self, ids: &[RegionId]) -> u64 {
        ids.iter().map(|&id| self.get(id).footprint).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut r = CodeRegions::new();
        let a = r.add("a", 1000, 2.0);
        let b = r.add("b", 64 * 1024, 5.0);
        let c = r.add("c", 1, 0.5);
        let (ra, rb, rc) = (r.get(a), r.get(b), r.get(c));
        assert_eq!(ra.base % 4096, 0);
        assert_eq!(rb.base % 4096, 0);
        assert!(ra.base + ra.footprint < rb.base, "guard gap required");
        assert!(rb.base + rb.footprint < rc.base);
        assert_eq!(ra.footprint, 1024); // rounded to lines
        assert_eq!(rc.footprint, 64); // minimum one line
        assert!(ra.base >= CODE_BASE);
    }

    #[test]
    fn footprint_sums() {
        let mut r = CodeRegions::new();
        let a = r.add("a", 4096, 1.0);
        let b = r.add("b", 8192, 1.0);
        assert_eq!(r.footprint_of(&[a, b]), 12288);
    }

    #[test]
    fn ids_are_dense() {
        let mut r = CodeRegions::new();
        for i in 0..10 {
            let id = r.add("x", 64, 0.0);
            assert_eq!(id as usize, i);
        }
        assert_eq!(r.len(), 10);
    }
}
