//! Packed trace events.
//!
//! One event per `u64`. Traces routinely run to tens of millions of events
//! across dozens of client threads, so the representation matters: 8 bytes
//! per event keeps a 64-client OLTP capture in the low hundreds of MB.
//!
//! Layout (bit 63 is the MSB):
//!
//! ```text
//! op=00 Exec:   [63:62]=00 [61:52]=region(10) [31:0]=instrs
//! op=01 Load:   [63:62]=01 [61]=dep [60:49]=size(12) [47:0]=addr
//! op=10 Store:  [63:62]=10          [60:49]=size(12) [47:0]=addr
//! op=11 Marker: [63:62]=11 [2:0]=kind (0=Fence, 1=UnitEnd, 2=Block, 3=Wake,
//!               4=RemoteSend, 5=RemoteRecv); remote markers carry a
//!               [34:3]=bytes payload (message size for occupancy costing)
//! ```
//!
//! The marker kind field was widened from 2 to 3 bits when the remote
//! markers were added. The four original kinds keep bit 2 clear, so every
//! pre-existing packed word decodes to the same event it always did —
//! recorded golden streams are unaffected.
//!
//! Sizes are limited to [`MAX_ACCESS`] bytes; the [`Tracer`](crate::Tracer)
//! splits larger transfers into multiple events.

use crate::region::RegionId;

/// Cache-line size assumed throughout the system (bytes).
pub const CACHE_LINE: u64 = 64;

/// Largest single load/store event payload, in bytes.
pub const MAX_ACCESS: u32 = 4095;

/// Largest instruction count encodable in one `Exec` event.
pub const MAX_EXEC: u32 = u32::MAX;

const OP_SHIFT: u32 = 62;
const OP_EXEC: u64 = 0;
const OP_LOAD: u64 = 1;
const OP_STORE: u64 = 2;
const OP_MARKER: u64 = 3;

const DEP_BIT: u64 = 1 << 61;
const SIZE_SHIFT: u32 = 49;
const SIZE_MASK: u64 = 0xFFF;
const ADDR_MASK: u64 = (1 << 48) - 1;
const REGION_SHIFT: u32 = 52;
const REGION_MASK: u64 = 0x3FF;

const MARKER_FENCE: u64 = 0;
const MARKER_UNIT_END: u64 = 1;
const MARKER_BLOCK: u64 = 2;
const MARKER_WAKE: u64 = 3;
const MARKER_REMOTE_SEND: u64 = 4;
const MARKER_REMOTE_RECV: u64 = 5;
const MARKER_MASK: u64 = 0b111;
const REMOTE_BYTES_SHIFT: u32 = 3;

/// A single packed event. See module docs for the bit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedEvent(pub u64);

/// Decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Execute `instrs` instructions fetched sequentially through `region`.
    Exec {
        /// Code region being executed.
        region: RegionId,
        /// Number of instructions retired.
        instrs: u32,
    },
    /// One load instruction touching `[addr, addr+size)`. `dep` marks a
    /// load whose result gates subsequent instructions (pointer chase).
    Load {
        /// First byte of the access.
        addr: u64,
        /// Access size in bytes (≤ [`MAX_ACCESS`]).
        size: u16,
        /// Whether following instructions depend on the loaded value.
        dep: bool,
    },
    /// One store instruction touching `[addr, addr+size)`.
    Store {
        /// First byte of the access.
        addr: u64,
        /// Access size in bytes (≤ [`MAX_ACCESS`]).
        size: u16,
    },
    /// Ordering fence (lock acquire/release, commit): the out-of-order core
    /// drains its window before proceeding.
    Fence,
    /// A unit of work (transaction or query) completed — used for response
    /// time and per-unit throughput accounting.
    UnitEnd,
    /// The thread blocked on a lock wait (2PL queue) — the context drains
    /// and stops issuing until the matching [`Event::Wake`].
    Block,
    /// The thread resumed after a lock grant (or deadlock-victim
    /// notification) — pairs with the preceding [`Event::Wake`]'s
    /// [`Event::Block`].
    Wake,
    /// The thread injected a `bytes`-byte message onto the deployment
    /// interconnect (cross-instance request or commit vote). Replay
    /// charges link occupancy (`bytes / bytes_per_cycle`).
    RemoteSend {
        /// Message size in bytes.
        bytes: u32,
    },
    /// The thread consumed a `bytes`-byte message from the deployment
    /// interconnect (response or ack) — the thread was waiting on it, so
    /// replay charges one-way link latency plus occupancy.
    RemoteRecv {
        /// Message size in bytes.
        bytes: u32,
    },
}

impl PackedEvent {
    /// Pack an [`Event::Exec`].
    #[inline]
    pub fn exec(region: RegionId, instrs: u32) -> Self {
        debug_assert!((region as u64) <= REGION_MASK);
        PackedEvent((OP_EXEC << OP_SHIFT) | ((region as u64) << REGION_SHIFT) | instrs as u64)
    }

    /// Pack an [`Event::Load`].
    ///
    /// # Address masking policy
    ///
    /// The wire format carries 48 address bits. Every producer in this
    /// workspace allocates from [`AddressSpace`](crate::AddressSpace)
    /// (data, capped at 2^46) or [`CodeRegions`](crate::CodeRegions)
    /// (code, based at 2^47), both comfortably inside 48 bits, so a
    /// wider address is a caller bug: debug builds panic here. Release
    /// builds keep the historical behavior — high bits are truncated by
    /// `ADDR_MASK` — which aliases the access into the low 48-bit
    /// window rather than corrupting the op/size fields.
    #[inline]
    pub fn load(addr: u64, size: u32, dep: bool) -> Self {
        debug_assert!((1..=MAX_ACCESS).contains(&size));
        debug_assert!(
            addr <= ADDR_MASK,
            "load addr {addr:#x} exceeds the 48-bit trace address space \
             (release builds would silently mask it)"
        );
        let mut w =
            (OP_LOAD << OP_SHIFT) | ((size as u64 & SIZE_MASK) << SIZE_SHIFT) | (addr & ADDR_MASK);
        if dep {
            w |= DEP_BIT;
        }
        PackedEvent(w)
    }

    /// Pack an [`Event::Store`]. Addresses above 48 bits follow the
    /// masking policy documented on [`PackedEvent::load`]: panic in
    /// debug builds, truncate via `ADDR_MASK` in release builds.
    #[inline]
    pub fn store(addr: u64, size: u32) -> Self {
        debug_assert!((1..=MAX_ACCESS).contains(&size));
        debug_assert!(
            addr <= ADDR_MASK,
            "store addr {addr:#x} exceeds the 48-bit trace address space \
             (release builds would silently mask it)"
        );
        PackedEvent(
            (OP_STORE << OP_SHIFT) | ((size as u64 & SIZE_MASK) << SIZE_SHIFT) | (addr & ADDR_MASK),
        )
    }

    /// Pack an [`Event::Fence`] marker.
    #[inline]
    pub fn fence() -> Self {
        PackedEvent((OP_MARKER << OP_SHIFT) | MARKER_FENCE)
    }

    /// Pack an [`Event::UnitEnd`] marker.
    #[inline]
    pub fn unit_end() -> Self {
        PackedEvent((OP_MARKER << OP_SHIFT) | MARKER_UNIT_END)
    }

    /// Pack an [`Event::Block`] marker.
    #[inline]
    pub fn block() -> Self {
        PackedEvent((OP_MARKER << OP_SHIFT) | MARKER_BLOCK)
    }

    /// Pack an [`Event::Wake`] marker.
    #[inline]
    pub fn wake() -> Self {
        PackedEvent((OP_MARKER << OP_SHIFT) | MARKER_WAKE)
    }

    /// Pack an [`Event::RemoteSend`] marker carrying the message size.
    #[inline]
    pub fn remote_send(bytes: u32) -> Self {
        PackedEvent(
            (OP_MARKER << OP_SHIFT) | ((bytes as u64) << REMOTE_BYTES_SHIFT) | MARKER_REMOTE_SEND,
        )
    }

    /// Pack an [`Event::RemoteRecv`] marker carrying the message size.
    #[inline]
    pub fn remote_recv(bytes: u32) -> Self {
        PackedEvent(
            (OP_MARKER << OP_SHIFT) | ((bytes as u64) << REMOTE_BYTES_SHIFT) | MARKER_REMOTE_RECV,
        )
    }

    /// Decode into the friendly representation.
    #[inline]
    pub fn decode(self) -> Event {
        let w = self.0;
        match w >> OP_SHIFT {
            OP_EXEC => Event::Exec {
                region: ((w >> REGION_SHIFT) & REGION_MASK) as RegionId,
                instrs: w as u32,
            },
            OP_LOAD => Event::Load {
                addr: w & ADDR_MASK,
                size: ((w >> SIZE_SHIFT) & SIZE_MASK) as u16,
                dep: w & DEP_BIT != 0,
            },
            OP_STORE => Event::Store {
                addr: w & ADDR_MASK,
                size: ((w >> SIZE_SHIFT) & SIZE_MASK) as u16,
            },
            _ => match w & MARKER_MASK {
                MARKER_UNIT_END => Event::UnitEnd,
                MARKER_BLOCK => Event::Block,
                MARKER_WAKE => Event::Wake,
                MARKER_REMOTE_SEND => Event::RemoteSend {
                    bytes: (w >> REMOTE_BYTES_SHIFT) as u32,
                },
                MARKER_REMOTE_RECV => Event::RemoteRecv {
                    bytes: (w >> REMOTE_BYTES_SHIFT) as u32,
                },
                _ => Event::Fence,
            },
        }
    }
}

impl Event {
    /// Pack into the wire representation.
    #[inline]
    pub fn pack(self) -> PackedEvent {
        match self {
            Event::Exec { region, instrs } => PackedEvent::exec(region, instrs),
            Event::Load { addr, size, dep } => PackedEvent::load(addr, size as u32, dep),
            Event::Store { addr, size } => PackedEvent::store(addr, size as u32),
            Event::Fence => PackedEvent::fence(),
            Event::UnitEnd => PackedEvent::unit_end(),
            Event::Block => PackedEvent::block(),
            Event::Wake => PackedEvent::wake(),
            Event::RemoteSend { bytes } => PackedEvent::remote_send(bytes),
            Event::RemoteRecv { bytes } => PackedEvent::remote_recv(bytes),
        }
    }

    /// Number of retired instructions this event represents.
    #[inline]
    pub fn instr_count(self) -> u64 {
        match self {
            Event::Exec { instrs, .. } => instrs as u64,
            Event::Load { .. } | Event::Store { .. } => 1,
            Event::Fence
            | Event::UnitEnd
            | Event::Block
            | Event::Wake
            | Event::RemoteSend { .. }
            | Event::RemoteRecv { .. } => 0,
        }
    }
}

/// Iterate over the cache lines touched by an access of `size` bytes at
/// `addr` (inclusive of partial first/last lines).
#[inline]
pub fn lines_touched(addr: u64, size: u16) -> impl Iterator<Item = u64> {
    let first = addr / CACHE_LINE;
    let last = (addr + size.max(1) as u64 - 1) / CACHE_LINE;
    (first..=last).map(|l| l * CACHE_LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_all_variants() {
        let cases = [
            Event::Exec {
                region: 0,
                instrs: 0,
            },
            Event::Exec {
                region: 1023,
                instrs: u32::MAX,
            },
            Event::Load {
                addr: 0,
                size: 1,
                dep: false,
            },
            Event::Load {
                addr: (1 << 48) - 1,
                size: 4095,
                dep: true,
            },
            Event::Store {
                addr: 0xDEAD_BEEF,
                size: 64,
            },
            Event::Fence,
            Event::UnitEnd,
            Event::Block,
            Event::Wake,
            Event::RemoteSend { bytes: 0 },
            Event::RemoteSend { bytes: u32::MAX },
            Event::RemoteRecv { bytes: 1 },
            Event::RemoteRecv { bytes: 4096 },
        ];
        for e in cases {
            assert_eq!(e.pack().decode(), e, "roundtrip failed for {e:?}");
        }
    }

    /// The marker-kind widening must keep the four original marker
    /// encodings byte-stable: recorded golden streams decode unchanged.
    #[test]
    fn legacy_marker_words_decode_unchanged() {
        for (word, want) in [
            (3u64 << 62, Event::Fence),
            ((3u64 << 62) | 1, Event::UnitEnd),
            ((3u64 << 62) | 2, Event::Block),
            ((3u64 << 62) | 3, Event::Wake),
        ] {
            assert_eq!(PackedEvent(word).decode(), want);
            assert_eq!(want.pack().0, word, "re-encoding must not move bits");
        }
        // Remote markers set bit 2, which no legacy marker ever did.
        assert_eq!(PackedEvent::remote_send(9).0 & 0b111, 0b100);
        assert_eq!(PackedEvent::remote_recv(9).0 & 0b111, 0b101);
    }

    #[test]
    fn instr_counts() {
        assert_eq!(
            Event::Exec {
                region: 3,
                instrs: 17
            }
            .instr_count(),
            17
        );
        assert_eq!(
            Event::Load {
                addr: 64,
                size: 8,
                dep: false
            }
            .instr_count(),
            1
        );
        assert_eq!(Event::Store { addr: 64, size: 8 }.instr_count(), 1);
        assert_eq!(Event::Fence.instr_count(), 0);
    }

    #[test]
    fn lines_touched_spans() {
        // 8 bytes fully inside one line
        assert_eq!(lines_touched(0, 8).collect::<Vec<_>>(), vec![0]);
        // straddles a boundary
        assert_eq!(lines_touched(60, 8).collect::<Vec<_>>(), vec![0, 64]);
        // exactly one full line, aligned
        assert_eq!(lines_touched(64, 64).collect::<Vec<_>>(), vec![64]);
        // three lines
        assert_eq!(lines_touched(32, 128).collect::<Vec<_>>(), vec![0, 64, 128]);
        // size-0 treated as a 1-byte touch
        assert_eq!(lines_touched(100, 0).collect::<Vec<_>>(), vec![64]);
    }
}
