//! Memory-trace infrastructure shared by the database engine and the
//! CMP simulator.
//!
//! The reproduction methodology is *trace-driven*: the relational engine
//! executes workloads natively and
//! records, per client thread, a compact stream of [`Event`]s — instruction
//! execution runs through named [code regions](CodeRegions), data loads and
//! stores against a [simulated address space](AddressSpace), and ordering
//! markers. The simulator replays these streams on modeled cores.
//!
//! Three properties of this representation carry the paper's results:
//!
//! * **Real addresses.** Loads/stores carry addresses handed out by a
//!   [`AddressSpace`] bump allocator, so data structures that are shared in
//!   the engine (lock-table buckets, B+Tree roots, hot rows) are shared in
//!   the traces — which is what produces coherence traffic on SMPs and
//!   shared-L2 hits on CMPs (paper §5.2).
//! * **Dependence marking.** [`Event::Load`] carries a `dep` flag set by the
//!   engine on pointer-chasing loads (B+Tree descents, hash-chain walks).
//!   The out-of-order core model cannot overlap past a dependent load; this
//!   is what gives OLTP its low memory-level parallelism relative to DSS
//!   scans (paper §2.1, §4).
//! * **Instruction footprints.** [`Event::Exec`] names a [`CodeRegion`] with
//!   a byte footprint; the simulator walks a per-thread cursor through the
//!   region so that the L1-I working set of a workload equals the sum of its
//!   active regions (large for OLTP, small for DSS scan loops — paper §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod event;
pub mod region;
pub mod segment;
pub mod summary;
pub mod tracer;

pub use addr::{AddressSpace, AddressSpaceError, ScratchArena, SegmentInfo, SimAddr};
pub use event::{Event, PackedEvent, CACHE_LINE};
pub use region::{CodeRegion, CodeRegions, RegionId};
pub use segment::{
    segments_decoded, CountingSink, Segment, SegmentBuffer, TraceSink, TraceSource, SEGMENT_EVENTS,
};
pub use summary::TraceSummary;
pub use tracer::{EventIter, ThreadTrace, TraceBundle, Tracer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_capture_roundtrip() {
        let space = AddressSpace::new();
        let a = space.alloc("table", 4096);
        let mut regions = CodeRegions::new();
        let scan = regions.add("scan", 8 * 1024, 1.0);

        let mut t = Tracer::recording();
        t.exec(scan, 100);
        t.load(a, 64);
        t.load_dep(a + 64, 8);
        t.store(a + 128, 16);
        t.fence();
        t.unit_end();
        let trace = t.finish();

        let evs: Vec<Event> = trace.iter().collect();
        assert_eq!(
            evs,
            vec![
                Event::Exec {
                    region: scan,
                    instrs: 100
                },
                Event::Load {
                    addr: a,
                    size: 64,
                    dep: false
                },
                Event::Load {
                    addr: a + 64,
                    size: 8,
                    dep: true
                },
                Event::Store {
                    addr: a + 128,
                    size: 16
                },
                Event::Fence,
                Event::UnitEnd,
            ]
        );
        assert_eq!(trace.instrs(), 103); // 100 exec + 2 loads + 1 store
        assert_eq!(trace.units(), 1);
    }
}
