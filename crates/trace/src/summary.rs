//! Trace summaries — cheap workload characterization without a simulator.
//!
//! Used by reports, calibration, and tests: per-event-type counts, unique
//! data/instruction line counts (working-set proxies), and the
//! dependent-load fraction (memory-level-parallelism proxy).

#[allow(clippy::disallowed_types)]
// lint:allow(hash-order): both sets below feed order-independent reductions (len and sum)
use std::collections::HashSet;

use crate::event::{lines_touched, Event, CACHE_LINE};
use crate::region::{CodeRegions, INSTR_BYTES};
use crate::tracer::ThreadTrace;

/// Aggregate statistics over one or more thread traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total retired instructions (exec charges + one per load/store).
    pub instrs: u64,
    /// Load events.
    pub loads: u64,
    /// Loads marked dependent (pointer chases).
    pub dep_loads: u64,
    /// Store events.
    pub stores: u64,
    /// Ordering fences.
    pub fences: u64,
    /// Completed work units (transactions/queries).
    pub units: u64,
    /// Lock-wait block markers (nonzero only in contended captures).
    pub blocks: u64,
    /// Wake markers (lock grants / victim notifications after a wait).
    pub wakes: u64,
    /// Remote-send markers (cross-instance messages injected; nonzero
    /// only in multi-instance deployment captures).
    pub remote_sends: u64,
    /// Remote-recv markers (cross-instance messages awaited).
    pub remote_recvs: u64,
    /// Interconnect message bytes across sends and recvs.
    pub remote_bytes: u64,
    /// Unique data cache lines touched (data working set, in lines).
    pub data_lines: u64,
    /// Unique instruction cache lines covered by the executed regions
    /// (instruction working set, in lines).
    pub code_lines: u64,
}

impl TraceSummary {
    /// Summarize a set of traces against their region table.
    pub fn compute(regions: &CodeRegions, threads: &[ThreadTrace]) -> Self {
        let mut s = TraceSummary::default();
        #[allow(clippy::disallowed_types)]
        // lint:allow(hash-order): data_lines is read via len() only; regions_seen is summed, and addition commutes
        let mut data_lines: HashSet<u64> = HashSet::new();
        #[allow(clippy::disallowed_types)]
        let mut regions_seen: HashSet<u16> = HashSet::new(); // lint:allow(hash-order): summed below; addition commutes
        for t in threads {
            for ev in t.iter() {
                match ev {
                    Event::Exec { region, instrs } => {
                        s.instrs += instrs as u64;
                        regions_seen.insert(region);
                    }
                    Event::Load { addr, size, dep } => {
                        s.instrs += 1;
                        s.loads += 1;
                        if dep {
                            s.dep_loads += 1;
                        }
                        data_lines.extend(lines_touched(addr, size));
                    }
                    Event::Store { addr, size } => {
                        s.instrs += 1;
                        s.stores += 1;
                        data_lines.extend(lines_touched(addr, size));
                    }
                    Event::Fence => s.fences += 1,
                    Event::UnitEnd => s.units += 1,
                    Event::Block => s.blocks += 1,
                    Event::Wake => s.wakes += 1,
                    Event::RemoteSend { bytes } => {
                        s.remote_sends += 1;
                        s.remote_bytes += bytes as u64;
                    }
                    Event::RemoteRecv { bytes } => {
                        s.remote_recvs += 1;
                        s.remote_bytes += bytes as u64;
                    }
                }
            }
        }
        s.data_lines = data_lines.len() as u64;
        s.code_lines = regions_seen
            .iter()
            .map(|&id| regions.get(id).footprint / CACHE_LINE)
            .sum();
        s
    }

    /// Data working set in bytes.
    pub fn data_working_set(&self) -> u64 {
        self.data_lines * CACHE_LINE
    }

    /// Instruction working set in bytes.
    pub fn code_working_set(&self) -> u64 {
        self.code_lines * CACHE_LINE
    }

    /// Fraction of loads that are dependent (pointer chases); lower means
    /// more memory-level parallelism is available to an OoO core.
    pub fn dep_load_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.dep_loads as f64 / self.loads as f64
        }
    }

    /// Memory accesses per 1000 instructions.
    pub fn accesses_per_kinstr(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 * 1000.0 / self.instrs as f64
        }
    }

    /// Sanity helper: expected fetches in instruction lines per instruction.
    pub fn instr_bytes(&self) -> u64 {
        self.instrs * INSTR_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn summary_counts() {
        let mut regions = CodeRegions::new();
        let r0 = regions.add("hot", 128, 1.0); // 2 lines
        let r1 = regions.add("cold", 64, 1.0); // 1 line

        let mut t = Tracer::recording();
        t.exec(r0, 50);
        t.load(0x40, 8);
        t.load_dep(0x80, 8);
        t.load(0x40, 8); // same line again: not a new working-set line
        t.store(0x1000, 64);
        t.fence();
        t.exec(r1, 10);
        t.unit_end();
        let tr = t.finish();

        let s = TraceSummary::compute(&regions, &[tr]);
        assert_eq!(s.instrs, 50 + 10 + 3 + 1);
        assert_eq!(s.loads, 3);
        assert_eq!(s.dep_loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.units, 1);
        assert_eq!(s.data_lines, 3); // 0x40, 0x80, 0x1000
        assert_eq!(s.code_lines, 3); // 2 + 1
        assert!((s.dep_load_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary() {
        let regions = CodeRegions::new();
        let s = TraceSummary::compute(&regions, &[]);
        assert_eq!(s, TraceSummary::default());
        assert_eq!(s.dep_load_fraction(), 0.0);
        assert_eq!(s.accesses_per_kinstr(), 0.0);
    }
}
