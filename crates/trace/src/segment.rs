//! Chunked columnar trace segments and the sink/source seams.
//!
//! The flat `Vec<PackedEvent>` representation (8 bytes/event, one
//! unbounded buffer per thread) is replaced by fixed-size blocks of
//! [`SEGMENT_EVENTS`] events, each encoded into a [`Segment`] with four
//! byte columns:
//!
//! * **kinds** — a run-length column of op kinds (`Exec`, `Load`,
//!   dependent `Load`, `Store`, and the markers), stored as
//!   `(kind, run)` byte pairs. Engine traces are bursty (runs of loads
//!   inside a scan, runs of exec charges), so runs are long.
//! * **mem** — for each load/store, a zigzag-varint *delta* from the
//!   previous access address in the same segment, then a varint size.
//!   Accesses are overwhelmingly near-sequential or strided, so deltas
//!   are small. The delta base resets to 0 at each segment boundary so
//!   every segment decodes independently.
//! * **exec** — for each exec run, a varint region id and a varint
//!   instruction count.
//! * **remote** — for each `RemoteSend`/`RemoteRecv` marker, a varint
//!   message size. Empty (zero bytes) for single-instance traces.
//!
//! The codec is **lossless**: decode returns exactly the
//! [`Event`] sequence that was encoded, byte-identical (after
//! [`Event::pack`]) to the legacy flat stream. That guarantee is gated
//! by proptest round-trips in `tests/proptests.rs` and, end to end, by
//! the PR-3 golden anchor in `tests/api_equivalence.rs`.
//!
//! [`TraceSink`] is the capture seam: a `Tracer` seals finished blocks
//! and emits them into a sink instead of growing one buffer, so peak
//! *staging* memory per thread is one block (`SEGMENT_EVENTS` × 8 B)
//! regardless of trace length. [`SegmentBuffer`] retains segments for
//! replay; [`CountingSink`] retains nothing (bounded-memory capture for
//! runs that only need aggregate counts). [`TraceSource`] is the replay
//! seam consumed block-at-a-time by the simulator's cursor.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{Event, PackedEvent};
use crate::region::RegionId;

/// Events per sealed segment (the block size of the columnar format).
///
/// 4096 events stage in a 32 KB scratch buffer and typically encode to
/// a few KB; large enough to amortize per-block decode overhead, small
/// enough that per-thread staging memory is negligible.
pub const SEGMENT_EVENTS: usize = 4096;

/// Process-wide count of segment decodes ([`Segment::decode_into`]
/// calls). A diagnostics counter: perf tests assert that cached
/// aggregates (e.g. [`crate::TraceBundle::region_instr_totals`]) do not
/// silently re-decode streams, and the trace bench reports decode work.
static SEGMENTS_DECODED: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide segment-decode counter: the number of
/// [`Segment::decode_into`] calls made by this process. Perf tests use
/// it to assert that cached aggregates do not silently re-decode
/// streams.
pub fn segments_decoded() -> u64 {
    SEGMENTS_DECODED.load(Ordering::Relaxed)
}

// Kind codes for the run-length column. Load/LoadDep are distinct kinds
// so the dep flag rides the RLE column and memory entries stay uniform.
const K_EXEC: u8 = 0;
const K_LOAD: u8 = 1;
const K_LOAD_DEP: u8 = 2;
const K_STORE: u8 = 3;
const K_FENCE: u8 = 4;
const K_UNIT_END: u8 = 5;
const K_BLOCK: u8 = 6;
const K_WAKE: u8 = 7;
const K_REMOTE_SEND: u8 = 8;
const K_REMOTE_RECV: u8 = 9;

const NO_KIND: u8 = u8::MAX;
const MAX_RUN: u32 = 255;

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// One encoded block of up to [`SEGMENT_EVENTS`] events (see module
/// docs for the column layout).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Segment {
    /// Decoded event count.
    len: u32,
    /// Run-length op-kind column: `(kind, run)` byte pairs.
    kinds: Vec<u8>,
    /// Memory column: zigzag-varint address delta + varint size per
    /// load/store, in stream order.
    mem: Vec<u8>,
    /// Exec column: varint region id + varint instruction count per
    /// exec run, in stream order.
    exec: Vec<u8>,
    /// Remote column: varint message size per remote send/recv marker,
    /// in stream order. Empty for traces with no cross-instance traffic,
    /// so single-chip segments are byte-identical to the pre-deployment
    /// format.
    remote: Vec<u8>,
}

impl Segment {
    /// Encode a block of packed events. The input may be any length
    /// (the tracer seals at [`SEGMENT_EVENTS`]; the final block of a
    /// trace is usually shorter).
    pub fn encode(events: &[PackedEvent]) -> Segment {
        let mut seg = Segment {
            len: events.len() as u32,
            kinds: Vec::new(),
            mem: Vec::new(),
            exec: Vec::new(),
            remote: Vec::new(),
        };
        let mut run_kind = NO_KIND;
        let mut run = 0u32;
        let mut prev_addr = 0i64;
        for ev in events {
            let kind = match ev.decode() {
                Event::Exec { region, instrs } => {
                    put_varint(&mut seg.exec, region as u64);
                    put_varint(&mut seg.exec, instrs as u64);
                    K_EXEC
                }
                Event::Load { addr, size, dep } => {
                    put_varint(&mut seg.mem, zigzag(addr as i64 - prev_addr));
                    put_varint(&mut seg.mem, size as u64);
                    prev_addr = addr as i64;
                    if dep {
                        K_LOAD_DEP
                    } else {
                        K_LOAD
                    }
                }
                Event::Store { addr, size } => {
                    put_varint(&mut seg.mem, zigzag(addr as i64 - prev_addr));
                    put_varint(&mut seg.mem, size as u64);
                    prev_addr = addr as i64;
                    K_STORE
                }
                Event::Fence => K_FENCE,
                Event::UnitEnd => K_UNIT_END,
                Event::Block => K_BLOCK,
                Event::Wake => K_WAKE,
                Event::RemoteSend { bytes } => {
                    put_varint(&mut seg.remote, bytes as u64);
                    K_REMOTE_SEND
                }
                Event::RemoteRecv { bytes } => {
                    put_varint(&mut seg.remote, bytes as u64);
                    K_REMOTE_RECV
                }
            };
            if kind == run_kind && run < MAX_RUN {
                run += 1;
            } else {
                if run > 0 {
                    seg.kinds.push(run_kind);
                    seg.kinds.push(run as u8);
                }
                run_kind = kind;
                run = 1;
            }
        }
        if run > 0 {
            seg.kinds.push(run_kind);
            seg.kinds.push(run as u8);
        }
        seg
    }

    /// Decode the whole block into `out` (cleared first), appending
    /// exactly [`Self::len`] events in stream order.
    pub fn decode_into(&self, out: &mut Vec<Event>) {
        SEGMENTS_DECODED.fetch_add(1, Ordering::Relaxed);
        out.clear();
        out.reserve(self.len as usize);
        let mut mem_pos = 0usize;
        let mut exec_pos = 0usize;
        let mut remote_pos = 0usize;
        let mut prev_addr = 0i64;
        let mut pair = 0usize;
        while pair + 1 < self.kinds.len() {
            let kind = self.kinds[pair];
            let run = self.kinds[pair + 1] as usize;
            pair += 2;
            for _ in 0..run {
                out.push(match kind {
                    K_EXEC => {
                        let region = get_varint(&self.exec, &mut exec_pos) as RegionId;
                        let instrs = get_varint(&self.exec, &mut exec_pos) as u32;
                        Event::Exec { region, instrs }
                    }
                    K_LOAD | K_LOAD_DEP | K_STORE => {
                        let delta = unzigzag(get_varint(&self.mem, &mut mem_pos));
                        let size = get_varint(&self.mem, &mut mem_pos) as u16;
                        // lint:allow(addr-cast): inverse of encode's zigzag delta; reconstructs the exact u64 the encoder masked, cannot truncate further
                        let addr = (prev_addr + delta) as u64;
                        prev_addr = addr as i64;
                        match kind {
                            K_STORE => Event::Store { addr, size },
                            k => Event::Load {
                                addr,
                                size,
                                dep: k == K_LOAD_DEP,
                            },
                        }
                    }
                    K_FENCE => Event::Fence,
                    K_UNIT_END => Event::UnitEnd,
                    K_BLOCK => Event::Block,
                    K_REMOTE_SEND => Event::RemoteSend {
                        bytes: get_varint(&self.remote, &mut remote_pos) as u32,
                    },
                    K_REMOTE_RECV => Event::RemoteRecv {
                        bytes: get_varint(&self.remote, &mut remote_pos) as u32,
                    },
                    _ => Event::Wake,
                });
            }
        }
        debug_assert_eq!(out.len(), self.len as usize, "segment length drift");
    }

    /// Decode into a fresh vector (tests and one-shot consumers; hot
    /// paths reuse a buffer via [`Self::decode_into`]).
    pub fn decode(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Decoded event count.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes: the three columns plus a 4-byte length
    /// header (the honest wire size; in-memory `Vec` capacity overhead
    /// is not counted).
    pub fn encoded_bytes(&self) -> usize {
        4 + self.kinds.len() + self.mem.len() + self.exec.len() + self.remote.len()
    }
}

/// Capture-side seam: receives sealed segments from a
/// [`Tracer`](crate::Tracer) as capture proceeds, one block at a time.
///
/// Implementations decide retention: [`SegmentBuffer`] keeps every
/// segment (replayable trace); [`CountingSink`] keeps none (bounded
/// memory — aggregate counters only). A sink must be `Send` so capture
/// threads can carry their tracers across a `thread::scope`.
pub trait TraceSink: Send + std::fmt::Debug {
    /// Receive one sealed block. Called in stream order.
    fn emit(&mut self, seg: Segment);

    /// Hand back every retained segment, in emission order. Called once
    /// by [`Tracer::finish`](crate::Tracer::finish); non-retaining
    /// sinks return an empty vector (the default).
    fn take_segments(&mut self) -> Vec<Segment> {
        Vec::new()
    }
}

/// The default retaining sink: keeps every sealed segment in memory so
/// [`Tracer::finish`](crate::Tracer::finish) can produce a replayable
/// [`ThreadTrace`](crate::ThreadTrace).
#[derive(Debug, Default)]
pub struct SegmentBuffer {
    segments: Vec<Segment>,
}

impl TraceSink for SegmentBuffer {
    fn emit(&mut self, seg: Segment) {
        self.segments.push(seg);
    }

    fn take_segments(&mut self) -> Vec<Segment> {
        std::mem::take(&mut self.segments)
    }
}

/// A non-retaining sink: counts segments, events, and encoded bytes,
/// then drops each block. With this sink a capture's peak trace memory
/// is one staging block per live tracer — independent of trace length —
/// at the cost of producing no replayable stream.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Sealed segments received.
    pub segments: u64,
    /// Events across all received segments.
    pub events: u64,
    /// Encoded bytes across all received segments.
    pub bytes: u64,
}

impl TraceSink for CountingSink {
    fn emit(&mut self, seg: Segment) {
        self.segments += 1;
        self.events += seg.len() as u64;
        self.bytes += seg.encoded_bytes() as u64;
    }
}

/// Replay-side seam: anything that exposes an encoded trace as an
/// ordered sequence of segments. The simulator's cursor decodes one
/// block at a time through this interface; `ThreadTrace` is the
/// canonical implementation.
pub trait TraceSource {
    /// Number of segments in stream order.
    fn n_segments(&self) -> usize;

    /// The `i`-th segment (panics out of range).
    fn segment(&self, i: usize) -> &Segment;

    /// Total decoded event count across all segments.
    fn n_events(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(events: &[Event]) {
        let packed: Vec<PackedEvent> = events.iter().map(|e| e.pack()).collect();
        let seg = Segment::encode(&packed);
        assert_eq!(seg.len(), events.len());
        assert_eq!(seg.decode(), events, "decode must be lossless");
    }

    #[test]
    fn empty_segment() {
        let seg = Segment::encode(&[]);
        assert!(seg.is_empty());
        assert!(seg.decode().is_empty());
        assert_eq!(seg.encoded_bytes(), 4);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&[
            Event::Exec {
                region: 1023,
                instrs: u32::MAX,
            },
            Event::Load {
                addr: (1 << 48) - 1,
                size: 4095,
                dep: true,
            },
            Event::Load {
                addr: 0,
                size: 1,
                dep: false,
            },
            Event::Store {
                addr: 0xDEAD_BEEF,
                size: 64,
            },
            Event::Fence,
            Event::UnitEnd,
            Event::Block,
            Event::Wake,
            Event::RemoteSend { bytes: 0 },
            Event::RemoteRecv { bytes: u32::MAX },
            Event::RemoteSend { bytes: 4096 },
            Event::Exec {
                region: 0,
                instrs: 0,
            },
        ]);
    }

    /// Interleaved remote markers and memory traffic: the remote column
    /// must track its own cursor without disturbing mem/exec decode.
    #[test]
    fn remote_markers_interleave_with_mem_traffic() {
        roundtrip(&[
            Event::Load {
                addr: 0x4000,
                size: 8,
                dep: false,
            },
            Event::RemoteSend { bytes: 96 },
            Event::Store {
                addr: 0x4040,
                size: 16,
            },
            Event::RemoteRecv { bytes: 64 },
            Event::RemoteRecv { bytes: 128 },
            Event::Exec {
                region: 7,
                instrs: 42,
            },
            Event::RemoteSend { bytes: 96 },
        ]);
        // Traces without remote traffic leave the column empty — the
        // encoded size is unchanged from the pre-deployment format.
        let seg = Segment::encode(&[PackedEvent::fence(), PackedEvent::load(64, 8, false)]);
        assert_eq!(seg.remote.len(), 0);
    }

    #[test]
    fn long_runs_cross_rle_limit() {
        // 1000 identical loads: runs must split at 255 and rejoin.
        let events: Vec<Event> = (0..1000)
            .map(|i| Event::Load {
                addr: 0x4000 + i * 64,
                size: 8,
                dep: i % 2 == 0,
            })
            .collect();
        roundtrip(&events);
    }

    #[test]
    fn sequential_addresses_encode_small() {
        // A strided scan: deltas are constant and tiny, so the encoded
        // size must be far below the flat 8 B/event.
        let packed: Vec<PackedEvent> = (0..4096u64)
            .map(|i| PackedEvent::load(0x10000 + i * 64, 8, false))
            .collect();
        let seg = Segment::encode(&packed);
        let bpe = seg.encoded_bytes() as f64 / seg.len() as f64;
        assert!(
            bpe < 4.0,
            "strided loads must encode well under 4 B/event, got {bpe:.2}"
        );
    }

    #[test]
    fn backward_deltas_roundtrip() {
        roundtrip(&[
            Event::Load {
                addr: 1 << 40,
                size: 8,
                dep: false,
            },
            Event::Store { addr: 64, size: 8 },
            Event::Load {
                addr: (1 << 48) - 64,
                size: 8,
                dep: true,
            },
        ]);
    }

    #[test]
    fn decode_counter_advances() {
        let before = segments_decoded();
        Segment::encode(&[PackedEvent::fence()]).decode();
        assert!(segments_decoded() > before);
    }

    #[test]
    fn varint_zigzag_edge_cases() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 47, -(1 << 47)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }
}
