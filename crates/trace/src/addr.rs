//! Simulated data address space.
//!
//! Every engine-side data structure that the simulator should "see" (pages,
//! B+Tree nodes, lock-table buckets, hash tables, log buffers, per-thread
//! scratch) is assigned a stable 48-bit byte address from a process-wide
//! bump allocator. Addresses are never recycled, so a trace captured at any
//! point remains unambiguous.
//!
//! The allocator is lock-free for allocation (an atomic bump pointer) so the
//! engine can run multi-threaded natively; the segment registry used for
//! reporting takes a short mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A byte address in the simulated data address space (fits in 48 bits).
pub type SimAddr = u64;

/// Base of the data segment. Kept above the zero page so that address 0 can
/// be used as a sentinel, and below `2^46` so the instruction space (bit 47
/// set, see [`crate::region`]) never collides with data.
pub const DATA_BASE: SimAddr = 0x1000;

/// Highest valid data address (exclusive).
pub const DATA_LIMIT: SimAddr = 1 << 46;

/// Window stride for partitioned address spaces: each engine instance of
/// a shared-nothing deployment allocates inside its own `2^40`-byte
/// window, so instances can never mint overlapping (or >48-bit) trace
/// addresses. `DATA_LIMIT / PARTITION_STRIDE` bounds the instance count.
pub const PARTITION_STRIDE: SimAddr = 1 << 40;

/// Typed capacity errors from [`AddressSpace`] reservation — returned at
/// the capture boundary instead of minting an address the 48-bit trace
/// format would silently alias in release builds (the `debug_assert`-only
/// check in `PackedEvent::load`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressSpaceError {
    /// `AddressSpace::partition(index)` was asked for a window past
    /// [`DATA_LIMIT`].
    PartitionOutOfRange {
        /// Requested partition index.
        index: usize,
        /// Largest valid index (`DATA_LIMIT / PARTITION_STRIDE - 1`).
        max: usize,
    },
    /// A reservation would overrun this space's window.
    Capacity {
        /// Bytes requested.
        requested: u64,
        /// Bytes left in the window before the request.
        remaining: u64,
    },
}

impl std::fmt::Display for AddressSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressSpaceError::PartitionOutOfRange { index, max } => write!(
                f,
                "partition index {index} out of range (max {max} windows of {} B below the \
                 46-bit data limit)",
                PARTITION_STRIDE
            ),
            AddressSpaceError::Capacity {
                requested,
                remaining,
            } => write!(
                f,
                "simulated address-space window exhausted: {requested} B requested, \
                 {remaining} B remaining"
            ),
        }
    }
}

impl std::error::Error for AddressSpaceError {}

/// Metadata about one named allocation, for reports and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment tag given at allocation ("heap:orders", "lock-table", …).
    pub name: &'static str,
    /// First byte of the segment.
    pub base: SimAddr,
    /// Segment length in bytes (as requested, before alignment padding).
    pub len: u64,
}

/// Process-wide bump allocator for simulated data addresses.
///
/// Allocations are cache-line (64 B) aligned by default so that distinct
/// objects never false-share a simulated line unless the engine places them
/// in the same allocation deliberately.
#[derive(Debug)]
pub struct AddressSpace {
    next: AtomicU64,
    /// First address of this space's window (equals the initial `next`).
    base: SimAddr,
    /// End of this space's window (exclusive). [`DATA_LIMIT`] for the
    /// process-wide space; `base`-relative for partition windows.
    limit: SimAddr,
    segments: Mutex<Vec<SegmentInfo>>,
}

impl AddressSpace {
    /// An empty address space starting at [`DATA_BASE`].
    pub fn new() -> Self {
        AddressSpace {
            next: AtomicU64::new(DATA_BASE),
            base: DATA_BASE,
            limit: DATA_LIMIT,
            segments: Mutex::new(Vec::new()),
        }
    }

    /// The address space of engine instance `index` in a shared-nothing
    /// deployment: a private [`PARTITION_STRIDE`]-byte window. Window 0
    /// starts at [`DATA_BASE`], so a 1-partition deployment allocates
    /// byte-identically to [`AddressSpace::new`]. Returns a typed error
    /// if the window would extend past [`DATA_LIMIT`] — the capture
    /// boundary's guard against addresses the 48-bit trace format would
    /// silently mask in release builds.
    pub fn partition(index: usize) -> Result<Self, AddressSpaceError> {
        let max = (DATA_LIMIT / PARTITION_STRIDE) as usize - 1;
        if index > max {
            return Err(AddressSpaceError::PartitionOutOfRange { index, max });
        }
        let base = DATA_BASE + index as u64 * PARTITION_STRIDE;
        Ok(AddressSpace {
            next: AtomicU64::new(base),
            base,
            // The last window is truncated by DATA_BASE bytes so no
            // window ever reaches past the 46-bit data limit.
            limit: (base + PARTITION_STRIDE).min(DATA_LIMIT),
            segments: Mutex::new(Vec::new()),
        })
    }

    /// Allocate `bytes` of simulated memory, 64-byte aligned, tagged with a
    /// segment `name` for reporting. Panics if the 46-bit space is exhausted
    /// (which would indicate a mis-scaled workload, not a recoverable
    /// condition).
    pub fn alloc(&self, name: &'static str, bytes: u64) -> SimAddr {
        let base = self.alloc_aligned(bytes, 64);
        self.segments
            .lock()
            .expect("segment registry poisoned") // lint:allow(panic): poisoned mutex means a capture thread already panicked; propagating is the only sane option
            .push(SegmentInfo {
                name,
                base,
                len: bytes,
            });
        base
    }

    /// Allocate without recording a segment entry — used for small,
    /// high-volume allocations (individual B+Tree nodes) where a registry
    /// entry per object would be wasteful.
    pub fn alloc_anon(&self, bytes: u64) -> SimAddr {
        self.alloc_aligned(bytes, 64)
    }

    fn alloc_aligned(&self, bytes: u64, align: u64) -> SimAddr {
        self.try_alloc_aligned(bytes, align)
            // lint:allow(panic): documented panic shim over the typed try_ variant; exhaustion means a mis-scaled workload, not a recoverable state
            .unwrap_or_else(|e| panic!("simulated data address space exhausted: {e}"))
    }

    /// [`Self::alloc_aligned`] returning a typed error instead of
    /// panicking — a real `assert` path (not `debug_assert`), so release
    /// builds can never mint an address outside this space's window.
    fn try_alloc_aligned(&self, bytes: u64, align: u64) -> Result<SimAddr, AddressSpaceError> {
        debug_assert!(align.is_power_of_two());
        let bytes = bytes.max(1);
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            let base = (cur + align - 1) & !(align - 1);
            let end = base + bytes;
            if end >= self.limit {
                return Err(AddressSpaceError::Capacity {
                    requested: bytes,
                    remaining: self.limit.saturating_sub(cur),
                });
            }
            if self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(base);
            }
        }
    }

    /// Total simulated bytes allocated so far (window-relative).
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - self.base
    }

    /// Snapshot of the named segments.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        self.segments
            .lock()
            .expect("segment registry poisoned") // lint:allow(panic): poisoned mutex means a capture thread already panicked; propagating is the only sane option
            .clone()
    }

    /// Carve a private [`ScratchArena`] of `bytes` out of this space.
    ///
    /// The arena is one named allocation against the shared bump
    /// pointer; afterwards the holder sub-allocates from it with no
    /// further shared-state traffic. This is what makes parallel
    /// capture deterministic: arenas are reserved in client order
    /// before any worker thread starts, so each client's scratch
    /// addresses depend only on its own arena — not on the cross-client
    /// interleaving of `alloc_anon` calls. Simulated bytes are free
    /// (nothing is backed by real memory), so arenas can be generously
    /// oversized.
    pub fn reserve_arena(&self, name: &'static str, bytes: u64) -> ScratchArena {
        self.try_reserve_arena(name, bytes)
            // lint:allow(panic): documented panic shim; callers that can recover use try_reserve_arena
            .unwrap_or_else(|e| panic!("arena reservation \"{name}\" failed: {e}"))
    }

    /// [`Self::reserve_arena`] with a typed capacity error instead of a
    /// panic — the capture boundary uses this so a mis-scaled deployment
    /// (too many instances, oversized reservations) surfaces as an error
    /// before any out-of-window address reaches the trace.
    pub fn try_reserve_arena(
        &self,
        name: &'static str,
        bytes: u64,
    ) -> Result<ScratchArena, AddressSpaceError> {
        let base = self.try_alloc_aligned(bytes, 64)?;
        self.segments
            .lock()
            .expect("segment registry poisoned") // lint:allow(panic): poisoned mutex means a capture thread already panicked; propagating is the only sane option
            .push(SegmentInfo {
                name,
                base,
                len: bytes,
            });
        Ok(ScratchArena {
            next: base,
            end: base + bytes,
        })
    }
}

/// A privately owned slice of the simulated address space, sub-allocated
/// by bump pointer (see [`AddressSpace::reserve_arena`]).
#[derive(Debug, Clone)]
pub struct ScratchArena {
    next: SimAddr,
    end: SimAddr,
}

impl ScratchArena {
    /// Allocate `bytes` of scratch, 64-byte aligned. Panics on
    /// exhaustion — falling back to the shared allocator would silently
    /// reintroduce the cross-client coupling the arena exists to remove.
    pub fn alloc(&mut self, bytes: u64) -> SimAddr {
        let bytes = bytes.max(1);
        let base = (self.next + 63) & !63;
        let end = base + bytes;
        assert!(
            end <= self.end,
            "scratch arena exhausted ({bytes} B requested, {} B left) — \
             widen the reservation in the capture driver",
            self.end.saturating_sub(base)
        );
        self.next = end;
        base
    }

    /// Bytes still available (before alignment padding).
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.next)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let s = AddressSpace::new();
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 1);
        let c = s.alloc_anon(4096);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(c % 64, 0);
        assert!(a + 100 <= b, "segments must not overlap");
        assert!(b < c);
    }

    #[test]
    fn segments_recorded() {
        let s = AddressSpace::new();
        s.alloc("warehouse", 128);
        s.alloc("district", 256);
        let segs = s.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].name, "warehouse");
        assert_eq!(segs[1].len, 256);
    }

    #[test]
    fn allocated_tracks_total() {
        let s = AddressSpace::new();
        assert_eq!(s.allocated(), 0);
        s.alloc_anon(64);
        assert_eq!(s.allocated(), 64);
    }

    #[test]
    fn arenas_are_disjoint_and_deterministic() {
        let mk = || {
            let s = AddressSpace::new();
            let mut a = s.reserve_arena("scratch-0", 1 << 20);
            let mut b = s.reserve_arena("scratch-1", 1 << 20);
            (a.alloc(100), a.alloc(1), b.alloc(4096))
        };
        let (a0, a1, b0) = mk();
        assert_eq!(a0 % 64, 0);
        assert!(a0 + 100 <= a1, "arena sub-allocations must not overlap");
        assert!(a1 < b0, "arenas must not overlap");
        assert_eq!((a0, a1, b0), mk(), "carving must be deterministic");
    }

    #[test]
    #[should_panic(expected = "scratch arena exhausted")]
    fn arena_exhaustion_panics() {
        let s = AddressSpace::new();
        let mut a = s.reserve_arena("tiny", 128);
        a.alloc(64);
        a.alloc(65);
    }

    /// ISSUE 7 satellite: capacity is enforced by real branches, not
    /// `debug_assert!`, so this test is meaningful in release builds too
    /// — no reservation can ever mint an address the 48-bit trace
    /// format would alias.
    #[test]
    fn capacity_errors_are_typed_and_release_safe() {
        // Out-of-range partition index: typed error, no panic.
        let max = (DATA_LIMIT / PARTITION_STRIDE) as usize - 1;
        assert!(AddressSpace::partition(max).is_ok());
        let err = AddressSpace::partition(max + 1)
            .map(|_| ())
            .expect_err("window past DATA_LIMIT must be refused");
        assert_eq!(
            err,
            AddressSpaceError::PartitionOutOfRange {
                index: max + 1,
                max
            }
        );

        // Window overrun: typed error carrying the shortfall.
        let p = AddressSpace::partition(1).expect("window 1 fits");
        let err = p
            .try_reserve_arena("too-big", PARTITION_STRIDE)
            .expect_err("a full-stride arena cannot fit after the window base");
        assert!(matches!(err, AddressSpaceError::Capacity { .. }));

        // Everything successfully reserved stays inside the window —
        // and therefore inside 48 bits.
        let mut arena = p
            .try_reserve_arena("ok", 1 << 20)
            .expect("small arena fits");
        let a = arena.alloc(4096);
        assert!(a >= DATA_BASE + PARTITION_STRIDE);
        assert!(a + 4096 < DATA_BASE + 2 * PARTITION_STRIDE);
        assert!(a < (1 << 48), "no partitioned address may exceed 48 bits");
    }

    /// Partition window 0 allocates byte-identically to the process-wide
    /// space — the anchor that keeps 1-instance deployments equal to the
    /// classic single-chip capture.
    #[test]
    fn partition_zero_matches_process_space() {
        let shared = AddressSpace::new();
        let p0 = AddressSpace::partition(0).expect("window 0 always fits");
        for bytes in [100u64, 1, 4096, 64] {
            assert_eq!(shared.alloc_anon(bytes), p0.alloc_anon(bytes));
        }
        assert_eq!(shared.allocated(), p0.allocated());
    }

    #[test]
    fn partition_windows_are_disjoint() {
        let a = AddressSpace::partition(2).unwrap();
        let b = AddressSpace::partition(3).unwrap();
        let last_a = (0..100).map(|_| a.alloc_anon(1 << 20)).last().unwrap();
        let first_b = b.alloc_anon(64);
        assert!(last_a + (1 << 20) <= first_b, "windows must never overlap");
    }

    #[test]
    fn concurrent_allocs_do_not_overlap() {
        use std::sync::Arc;
        let s = Arc::new(AddressSpace::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| s.alloc_anon(96)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(
                w[0] + 96 <= w[1],
                "overlapping allocations {} {}",
                w[0],
                w[1]
            );
        }
    }
}
