//! Trace capture.
//!
//! The engine threads a [`Tracer`] through every operation. In recording
//! mode each logical action appends packed events; in null mode the calls
//! reduce to a branch and are cheap enough to leave in place for native
//! (non-simulated) benchmarking.
//!
//! Consecutive `exec` calls against the same region are coalesced into a
//! single event, which typically shrinks traces by 3-5x since engine code
//! charges instructions in small increments as it goes.
//!
//! Recording no longer grows one flat `Vec<PackedEvent>`: events stage in
//! a single fixed-size block and every [`SEGMENT_EVENTS`]-event block is
//! sealed into a columnar [`Segment`] and handed to a [`TraceSink`]. The
//! default sink ([`SegmentBuffer`]) retains segments so [`Tracer::finish`]
//! yields a replayable [`ThreadTrace`]; a streaming sink (see
//! [`Tracer::streaming`]) can instead spill or discard blocks, bounding
//! peak capture memory at one staging block per thread.

use crate::event::{Event, PackedEvent, MAX_ACCESS};
use crate::region::{CodeRegions, RegionId};
use crate::segment::{Segment, SegmentBuffer, TraceSink, TraceSource, SEGMENT_EVENTS};

/// Capture-mode switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Null,
    Record,
}

/// Per-thread trace recorder.
#[derive(Debug)]
pub struct Tracer {
    mode: Mode,
    /// Staging block; sealed into a [`Segment`] at [`SEGMENT_EVENTS`].
    block: Vec<PackedEvent>,
    sink: Box<dyn TraceSink>,
    /// Pending coalesced exec run: (region, instrs). `u16::MAX` = none.
    pending_region: RegionId,
    pending_instrs: u64,
    /// Per-region instruction totals, accumulated at exec-flush time so
    /// aggregate queries never re-decode the stream.
    region_instrs: Vec<u64>,
    n_events: usize,
    instrs: u64,
    loads: u64,
    stores: u64,
    units: u64,
    blocks: u64,
    wakes: u64,
    remote_sends: u64,
    remote_recvs: u64,
    remote_bytes: u64,
}

const NO_REGION: RegionId = u16::MAX;

impl Tracer {
    /// A tracer that records events into an in-memory segment buffer
    /// (the retaining sink — [`Tracer::finish`] yields a replayable
    /// trace).
    pub fn recording() -> Self {
        Self::streaming(Box::<SegmentBuffer>::default())
    }

    /// A tracer that records events and streams each sealed block into
    /// `sink`. Peak staging memory is one block ([`SEGMENT_EVENTS`]
    /// events) regardless of trace length; whether the trace is
    /// replayable afterwards is the sink's retention decision.
    pub fn streaming(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            mode: Mode::Record,
            block: Vec::with_capacity(SEGMENT_EVENTS),
            sink,
            pending_region: NO_REGION,
            pending_instrs: 0,
            region_instrs: Vec::new(),
            n_events: 0,
            instrs: 0,
            loads: 0,
            stores: 0,
            units: 0,
            blocks: 0,
            wakes: 0,
            remote_sends: 0,
            remote_recvs: 0,
            remote_bytes: 0,
        }
    }

    /// A tracer that drops events but still counts instructions — used for
    /// native runs where only aggregate counts are wanted.
    pub fn null() -> Self {
        Tracer {
            mode: Mode::Null,
            block: Vec::new(),
            sink: Box::<SegmentBuffer>::default(),
            pending_region: NO_REGION,
            pending_instrs: 0,
            region_instrs: Vec::new(),
            n_events: 0,
            instrs: 0,
            loads: 0,
            stores: 0,
            units: 0,
            blocks: 0,
            wakes: 0,
            remote_sends: 0,
            remote_recvs: 0,
            remote_bytes: 0,
        }
    }

    /// Whether this tracer records events (vs counting only).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.mode == Mode::Record
    }

    /// Append one packed event to the staging block, sealing a segment
    /// when the block fills.
    #[inline]
    fn push(&mut self, ev: PackedEvent) {
        self.block.push(ev);
        self.n_events += 1;
        if self.block.len() == SEGMENT_EVENTS {
            self.seal_block();
        }
    }

    /// Encode the staging block into a segment and emit it to the sink.
    fn seal_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        let seg = Segment::encode(&self.block);
        self.block.clear();
        self.sink.emit(seg);
    }

    /// Charge `instrs` instructions of execution in `region`.
    #[inline]
    pub fn exec(&mut self, region: RegionId, instrs: u32) {
        self.instrs += instrs as u64;
        if self.mode == Mode::Null || instrs == 0 {
            return;
        }
        if self.pending_region == region {
            self.pending_instrs += instrs as u64;
        } else {
            self.flush_exec();
            self.pending_region = region;
            self.pending_instrs = instrs as u64;
        }
    }

    /// Record a load of `size` bytes at `addr`. Large transfers are split
    /// into `MAX_ACCESS`-byte events.
    #[inline]
    pub fn load(&mut self, addr: u64, size: u32) {
        self.access(addr, size, false, false);
    }

    /// Record a *dependent* load — one whose result the following
    /// instructions need before they can issue (pointer chase).
    #[inline]
    pub fn load_dep(&mut self, addr: u64, size: u32) {
        self.access(addr, size, true, false);
    }

    /// Record a store of `size` bytes at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, size: u32) {
        self.access(addr, size, false, true);
    }

    #[inline]
    fn access(&mut self, mut addr: u64, mut size: u32, dep: bool, is_store: bool) {
        let n_events = size.max(1).div_ceil(MAX_ACCESS) as u64;
        if is_store {
            self.stores += n_events;
        } else {
            self.loads += n_events;
        }
        self.instrs += n_events;
        if self.mode == Mode::Null {
            return;
        }
        self.flush_exec();
        loop {
            let chunk = size.clamp(1, MAX_ACCESS);
            self.push(if is_store {
                PackedEvent::store(addr, chunk)
            } else {
                PackedEvent::load(addr, chunk, dep)
            });
            if size <= MAX_ACCESS {
                break;
            }
            size -= MAX_ACCESS;
            addr += MAX_ACCESS as u64;
        }
    }

    /// Ordering fence: lock acquisition/release, commit point.
    #[inline]
    pub fn fence(&mut self) {
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::fence());
        }
    }

    /// Mark the completion of one unit of work (transaction or query).
    #[inline]
    pub fn unit_end(&mut self) {
        self.units += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::unit_end());
        }
    }

    /// Mark the thread blocking on a lock wait (2PL queue).
    #[inline]
    pub fn block(&mut self) {
        self.blocks += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::block());
        }
    }

    /// Mark the thread resuming after a lock grant or victim notification.
    #[inline]
    pub fn wake(&mut self) {
        self.wakes += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::wake());
        }
    }

    /// Mark the injection of a `bytes`-byte message onto the deployment
    /// interconnect (cross-instance request, response, or commit vote).
    #[inline]
    pub fn remote_send(&mut self, bytes: u32) {
        self.remote_sends += 1;
        self.remote_bytes += bytes as u64;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::remote_send(bytes));
        }
    }

    /// Mark the consumption of a `bytes`-byte message from the deployment
    /// interconnect — the thread waits for it at replay time.
    #[inline]
    pub fn remote_recv(&mut self, bytes: u32) {
        self.remote_recvs += 1;
        self.remote_bytes += bytes as u64;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.push(PackedEvent::remote_recv(bytes));
        }
    }

    #[inline]
    fn flush_exec(&mut self) {
        if self.pending_region != NO_REGION {
            let idx = self.pending_region as usize;
            if idx >= self.region_instrs.len() {
                self.region_instrs.resize(idx + 1, 0);
            }
            self.region_instrs[idx] += self.pending_instrs;
            let mut remaining = self.pending_instrs;
            while remaining > 0 {
                let chunk = remaining.min(u32::MAX as u64) as u32;
                self.push(PackedEvent::exec(self.pending_region, chunk));
                remaining -= chunk as u64;
            }
            self.pending_region = NO_REGION;
            self.pending_instrs = 0;
        }
    }

    /// Finish capture and produce the per-thread trace: the final
    /// partial block is sealed and the sink hands back whatever it
    /// retained (a non-retaining sink yields a trace with correct
    /// aggregate counters but no replayable segments).
    pub fn finish(mut self) -> ThreadTrace {
        self.flush_exec();
        self.seal_block();
        ThreadTrace {
            segments: self.sink.take_segments(),
            n_events: self.n_events,
            region_instrs: self.region_instrs,
            instrs: self.instrs,
            loads: self.loads,
            stores: self.stores,
            units: self.units,
            blocks: self.blocks,
            wakes: self.wakes,
            remote_sends: self.remote_sends,
            remote_recvs: self.remote_recvs,
            remote_bytes: self.remote_bytes,
        }
    }

    /// Instructions charged so far (available in both modes).
    pub fn instrs_so_far(&self) -> u64 {
        self.instrs
    }
}

/// A captured single-thread event stream — stored as columnar
/// [`Segment`]s — plus aggregate counts.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    segments: Vec<Segment>,
    n_events: usize,
    /// Per-region instruction totals cached at capture time (indexed by
    /// region id; may be shorter than the region table).
    region_instrs: Vec<u64>,
    instrs: u64,
    loads: u64,
    stores: u64,
    units: u64,
    blocks: u64,
    wakes: u64,
    remote_sends: u64,
    remote_recvs: u64,
    remote_bytes: u64,
}

impl ThreadTrace {
    /// Iterate over decoded events in capture order, decoding one
    /// segment at a time into a reused buffer.
    pub fn iter(&self) -> EventIter<'_> {
        EventIter {
            segments: &self.segments,
            seg: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Materialize the legacy flat packed stream (byte-identity
    /// comparisons in tests; hot paths should iterate segments instead).
    pub fn packed_events(&self) -> Vec<PackedEvent> {
        self.iter().map(|e| e.pack()).collect()
    }

    /// The encoded segments in stream order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Encoded size of the whole stream in bytes (sum of segment wire
    /// sizes).
    pub fn encoded_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.encoded_bytes()).sum()
    }

    /// Instructions charged to each region by this thread, cached at
    /// capture time (indexed by region id; may be shorter than the
    /// region table — missing tail entries are zero).
    pub fn region_instr_totals(&self) -> &[u64] {
        &self.region_instrs
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.n_events
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Total instructions (exec + one per load/store event).
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Load events recorded.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Store events recorded.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Completed work units (transactions/queries).
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Lock-wait block events recorded (contended captures only).
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Wake events recorded (lock grants after a wait).
    pub fn wakes(&self) -> u64 {
        self.wakes
    }

    /// Remote-send markers recorded (cross-instance messages injected).
    pub fn remote_sends(&self) -> u64 {
        self.remote_sends
    }

    /// Remote-recv markers recorded (cross-instance messages awaited).
    pub fn remote_recvs(&self) -> u64 {
        self.remote_recvs
    }

    /// Total interconnect message bytes across sends and recvs.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes
    }
}

impl TraceSource for ThreadTrace {
    fn n_segments(&self) -> usize {
        self.segments.len()
    }

    fn segment(&self, i: usize) -> &Segment {
        &self.segments[i]
    }

    fn n_events(&self) -> usize {
        self.n_events
    }
}

/// Block-decoding event iterator over a segmented trace (see
/// [`ThreadTrace::iter`]).
#[derive(Debug)]
pub struct EventIter<'a> {
    segments: &'a [Segment],
    seg: usize,
    buf: Vec<Event>,
    pos: usize,
}

impl Iterator for EventIter<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        loop {
            if self.pos < self.buf.len() {
                let e = self.buf[self.pos];
                self.pos += 1;
                return Some(e);
            }
            if self.seg >= self.segments.len() {
                return None;
            }
            self.segments[self.seg].decode_into(&mut self.buf);
            self.seg += 1;
            self.pos = 0;
        }
    }
}

/// A set of per-thread traces plus the code-region table they reference —
/// everything the simulator needs to replay a workload.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Code-region table shared by every thread's `Exec` events.
    pub regions: CodeRegions,
    /// One captured event stream per client thread.
    pub threads: Vec<ThreadTrace>,
}

impl TraceBundle {
    /// Bundle per-thread traces with the region table they reference.
    pub fn new(regions: CodeRegions, threads: Vec<ThreadTrace>) -> Self {
        TraceBundle { regions, threads }
    }

    /// Instructions summed across all threads.
    pub fn total_instrs(&self) -> u64 {
        self.threads.iter().map(|t| t.instrs()).sum()
    }

    /// Events summed across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// Completed work units summed across all threads.
    pub fn total_units(&self) -> u64 {
        self.threads.iter().map(|t| t.units()).sum()
    }

    /// Remote-send markers summed across all threads (zero for any
    /// single-instance capture).
    pub fn total_remote_sends(&self) -> u64 {
        self.threads.iter().map(|t| t.remote_sends()).sum()
    }

    /// Interconnect message bytes summed across all threads.
    pub fn total_remote_bytes(&self) -> u64 {
        self.threads.iter().map(|t| t.remote_bytes()).sum()
    }

    /// Encoded size of every thread's segments, summed — the resident
    /// memory cost of carrying this bundle (modulo `Vec` headers).
    pub fn encoded_bytes(&self) -> usize {
        self.threads.iter().map(|t| t.encoded_bytes()).sum()
    }

    /// Instructions charged to each code region across all threads,
    /// indexed by region id. Served from the per-thread totals cached
    /// at capture time — no event stream is decoded. Per-operator
    /// attribution for reports (e.g. "how much of this capture is
    /// hash-join build/probe work?").
    pub fn region_instr_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.regions.len()];
        for t in &self.threads {
            for (id, &v) in t.region_instr_totals().iter().enumerate() {
                if let Some(slot) = totals.get_mut(id) {
                    *slot += v;
                }
            }
        }
        totals
    }

    /// Instructions charged to the named code region across all threads
    /// (cached totals — O(threads), no decode). Returns 0 for a name no
    /// region carries.
    pub fn region_instrs(&self, name: &str) -> u64 {
        let Some(id) = self.regions.iter().find(|r| r.name == name).map(|r| r.id) else {
            return 0;
        };
        self.threads
            .iter()
            .map(|t| {
                t.region_instr_totals()
                    .get(id as usize)
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{segments_decoded, CountingSink};

    #[test]
    fn exec_coalescing() {
        let mut t = Tracer::recording();
        t.exec(5, 10);
        t.exec(5, 20);
        t.exec(6, 1);
        t.exec(5, 2);
        let tr = t.finish();
        let evs: Vec<Event> = tr.iter().collect();
        assert_eq!(
            evs,
            vec![
                Event::Exec {
                    region: 5,
                    instrs: 30
                },
                Event::Exec {
                    region: 6,
                    instrs: 1
                },
                Event::Exec {
                    region: 5,
                    instrs: 2
                },
            ]
        );
        assert_eq!(tr.instrs(), 33);
        assert_eq!(tr.region_instr_totals()[5], 32);
        assert_eq!(tr.region_instr_totals()[6], 1);
    }

    #[test]
    fn coalescing_flushed_by_memory_ops() {
        let mut t = Tracer::recording();
        t.exec(1, 4);
        t.load(128, 8);
        t.exec(1, 4);
        let tr = t.finish();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.instrs(), 9);
    }

    #[test]
    fn large_access_split() {
        let mut t = Tracer::recording();
        t.store(0, 10_000);
        let tr = t.finish();
        assert_eq!(tr.len(), 3); // 4095 + 4095 + 1810
        let total: u64 = tr
            .iter()
            .map(|e| match e {
                Event::Store { size, .. } => size as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 10_000);
        assert_eq!(tr.stores(), 3);
    }

    #[test]
    fn null_mode_counts_but_records_nothing() {
        let mut t = Tracer::null();
        t.exec(1, 100);
        t.load(64, 8);
        t.store(128, 8);
        t.unit_end();
        let tr = t.finish();
        assert!(tr.is_empty());
        assert_eq!(tr.instrs(), 102);
        assert_eq!(tr.units(), 1);
        assert!(tr.region_instr_totals().is_empty());
    }

    #[test]
    fn zero_instr_exec_is_dropped() {
        let mut t = Tracer::recording();
        t.exec(1, 0);
        let tr = t.finish();
        assert!(tr.is_empty());
    }

    #[test]
    fn traces_split_into_segments_at_block_size() {
        let mut t = Tracer::recording();
        for i in 0..(SEGMENT_EVENTS as u64 * 2 + 100) {
            t.load(i * 64, 8);
        }
        let tr = t.finish();
        assert_eq!(tr.len(), SEGMENT_EVENTS * 2 + 100);
        assert_eq!(tr.segments().len(), 3);
        assert_eq!(tr.segments()[0].len(), SEGMENT_EVENTS);
        assert_eq!(tr.segments()[2].len(), 100);
        assert_eq!(tr.packed_events().len(), tr.len());
    }

    #[test]
    fn cached_region_totals_match_decoded_stream() {
        let mut t = Tracer::recording();
        t.exec(2, 10);
        t.load(64, 8);
        t.exec(2, 5);
        t.exec(7, 1);
        t.unit_end();
        let tr = t.finish();
        let mut decoded = vec![0u64; 8];
        for e in tr.iter() {
            if let Event::Exec { region, instrs } = e {
                decoded[region as usize] += instrs as u64;
            }
        }
        let mut cached = tr.region_instr_totals().to_vec();
        cached.resize(8, 0);
        assert_eq!(cached, decoded);
    }

    /// Satellite 1 (ISSUE 6): region aggregates are served from the
    /// capture-time cache — repeated `region_instrs` calls decode
    /// nothing.
    #[test]
    fn region_queries_do_not_decode_segments() {
        let mut regions = CodeRegions::new();
        let a = regions.add("exec-a", 2000, 1.0);
        let b = regions.add("exec-b", 2000, 1.0);
        let mut t = Tracer::recording();
        t.exec(a, 100);
        t.load(64, 8);
        t.exec(b, 50);
        let bundle = TraceBundle::new(regions, vec![t.finish()]);
        let before = segments_decoded();
        for _ in 0..10 {
            assert_eq!(bundle.region_instrs("exec-a"), 100);
            assert_eq!(bundle.region_instrs("exec-b"), 50);
            assert_eq!(bundle.region_instrs("exec-missing"), 0);
        }
        let totals = bundle.region_instr_totals();
        assert_eq!(totals[a as usize], 100);
        assert_eq!(totals[b as usize], 50);
        assert_eq!(
            segments_decoded(),
            before,
            "aggregate region queries must not decode any segment"
        );
    }

    /// ISSUE 6 acceptance: bounded-memory capture at 4× the paper's
    /// 64-client OLTP scale. 256 live tracers stream multi-block
    /// traces through non-retaining sinks; per-tracer trace memory
    /// stays at exactly one staging block (`SEGMENT_EVENTS` events),
    /// independent of trace length — so total capture memory is block
    /// size × clients.
    #[test]
    fn streaming_sink_bounds_retained_memory_at_4x_paper_clients() {
        let clients = 256; // 4 × the paper's 64 OLTP clients
        let n = SEGMENT_EVENTS as u64 * 4 + 7;
        let mut tracers: Vec<Tracer> = (0..clients)
            .map(|_| Tracer::streaming(Box::<CountingSink>::default()))
            .collect();
        for (c, t) in tracers.iter_mut().enumerate() {
            for i in 0..n {
                t.exec(1, 3);
                t.load(0x8000 + (c as u64) * (1 << 20) + i * 64, 8);
            }
            assert!(
                t.block.capacity() <= SEGMENT_EVENTS,
                "staging block must never outgrow one segment"
            );
        }
        for t in tracers {
            let tr = t.finish();
            assert!(
                tr.segments().is_empty(),
                "counting sink must retain no segments"
            );
            assert_eq!(tr.loads(), n);
            assert!(tr.len() >= n as usize);
        }
    }
}
