//! Trace capture.
//!
//! The engine threads a [`Tracer`] through every operation. In recording
//! mode each logical action appends packed events; in null mode the calls
//! reduce to a branch and are cheap enough to leave in place for native
//! (non-simulated) benchmarking.
//!
//! Consecutive `exec` calls against the same region are coalesced into a
//! single event, which typically shrinks traces by 3-5x since engine code
//! charges instructions in small increments as it goes.

use crate::event::{Event, PackedEvent, MAX_ACCESS};
use crate::region::{CodeRegions, RegionId};

/// Capture-mode switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Null,
    Record,
}

/// Per-thread trace recorder.
#[derive(Debug)]
pub struct Tracer {
    mode: Mode,
    buf: Vec<PackedEvent>,
    /// Pending coalesced exec run: (region, instrs). `u16::MAX` = none.
    pending_region: RegionId,
    pending_instrs: u64,
    instrs: u64,
    loads: u64,
    stores: u64,
    units: u64,
    blocks: u64,
    wakes: u64,
}

const NO_REGION: RegionId = u16::MAX;

impl Tracer {
    /// A tracer that records events.
    pub fn recording() -> Self {
        Tracer {
            mode: Mode::Record,
            buf: Vec::with_capacity(64 * 1024),
            pending_region: NO_REGION,
            pending_instrs: 0,
            instrs: 0,
            loads: 0,
            stores: 0,
            units: 0,
            blocks: 0,
            wakes: 0,
        }
    }

    /// A tracer that drops events but still counts instructions — used for
    /// native runs where only aggregate counts are wanted.
    pub fn null() -> Self {
        Tracer {
            mode: Mode::Null,
            buf: Vec::new(),
            pending_region: NO_REGION,
            pending_instrs: 0,
            instrs: 0,
            loads: 0,
            stores: 0,
            units: 0,
            blocks: 0,
            wakes: 0,
        }
    }

    /// Whether this tracer records events (vs counting only).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.mode == Mode::Record
    }

    /// Charge `instrs` instructions of execution in `region`.
    #[inline]
    pub fn exec(&mut self, region: RegionId, instrs: u32) {
        self.instrs += instrs as u64;
        if self.mode == Mode::Null || instrs == 0 {
            return;
        }
        if self.pending_region == region {
            self.pending_instrs += instrs as u64;
        } else {
            self.flush_exec();
            self.pending_region = region;
            self.pending_instrs = instrs as u64;
        }
    }

    /// Record a load of `size` bytes at `addr`. Large transfers are split
    /// into `MAX_ACCESS`-byte events.
    #[inline]
    pub fn load(&mut self, addr: u64, size: u32) {
        self.access(addr, size, false, false);
    }

    /// Record a *dependent* load — one whose result the following
    /// instructions need before they can issue (pointer chase).
    #[inline]
    pub fn load_dep(&mut self, addr: u64, size: u32) {
        self.access(addr, size, true, false);
    }

    /// Record a store of `size` bytes at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, size: u32) {
        self.access(addr, size, false, true);
    }

    #[inline]
    fn access(&mut self, mut addr: u64, mut size: u32, dep: bool, is_store: bool) {
        let n_events = size.max(1).div_ceil(MAX_ACCESS) as u64;
        if is_store {
            self.stores += n_events;
        } else {
            self.loads += n_events;
        }
        self.instrs += n_events;
        if self.mode == Mode::Null {
            return;
        }
        self.flush_exec();
        loop {
            let chunk = size.clamp(1, MAX_ACCESS);
            self.buf.push(if is_store {
                PackedEvent::store(addr, chunk)
            } else {
                PackedEvent::load(addr, chunk, dep)
            });
            if size <= MAX_ACCESS {
                break;
            }
            size -= MAX_ACCESS;
            addr += MAX_ACCESS as u64;
        }
    }

    /// Ordering fence: lock acquisition/release, commit point.
    #[inline]
    pub fn fence(&mut self) {
        if self.mode == Mode::Record {
            self.flush_exec();
            self.buf.push(PackedEvent::fence());
        }
    }

    /// Mark the completion of one unit of work (transaction or query).
    #[inline]
    pub fn unit_end(&mut self) {
        self.units += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.buf.push(PackedEvent::unit_end());
        }
    }

    /// Mark the thread blocking on a lock wait (2PL queue).
    #[inline]
    pub fn block(&mut self) {
        self.blocks += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.buf.push(PackedEvent::block());
        }
    }

    /// Mark the thread resuming after a lock grant or victim notification.
    #[inline]
    pub fn wake(&mut self) {
        self.wakes += 1;
        if self.mode == Mode::Record {
            self.flush_exec();
            self.buf.push(PackedEvent::wake());
        }
    }

    #[inline]
    fn flush_exec(&mut self) {
        if self.pending_region != NO_REGION {
            let mut remaining = self.pending_instrs;
            while remaining > 0 {
                let chunk = remaining.min(u32::MAX as u64) as u32;
                self.buf.push(PackedEvent::exec(self.pending_region, chunk));
                remaining -= chunk as u64;
            }
            self.pending_region = NO_REGION;
            self.pending_instrs = 0;
        }
    }

    /// Finish capture and produce the per-thread trace.
    pub fn finish(mut self) -> ThreadTrace {
        self.flush_exec();
        ThreadTrace {
            events: self.buf,
            instrs: self.instrs,
            loads: self.loads,
            stores: self.stores,
            units: self.units,
            blocks: self.blocks,
            wakes: self.wakes,
        }
    }

    /// Instructions charged so far (available in both modes).
    pub fn instrs_so_far(&self) -> u64 {
        self.instrs
    }
}

/// A captured single-thread event stream plus aggregate counts.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    events: Vec<PackedEvent>,
    instrs: u64,
    loads: u64,
    stores: u64,
    units: u64,
    blocks: u64,
    wakes: u64,
}

impl ThreadTrace {
    /// Iterate over decoded events in capture order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.iter().map(|e| e.decode())
    }

    /// The raw packed event stream (byte-identity comparisons).
    pub fn events(&self) -> &[PackedEvent] {
        &self.events
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total instructions (exec + one per load/store event).
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Load events recorded.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Store events recorded.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Completed work units (transactions/queries).
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Lock-wait block events recorded (contended captures only).
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Wake events recorded (lock grants after a wait).
    pub fn wakes(&self) -> u64 {
        self.wakes
    }
}

/// A set of per-thread traces plus the code-region table they reference —
/// everything the simulator needs to replay a workload.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Code-region table shared by every thread's `Exec` events.
    pub regions: CodeRegions,
    /// One captured event stream per client thread.
    pub threads: Vec<ThreadTrace>,
}

impl TraceBundle {
    /// Bundle per-thread traces with the region table they reference.
    pub fn new(regions: CodeRegions, threads: Vec<ThreadTrace>) -> Self {
        TraceBundle { regions, threads }
    }

    /// Instructions summed across all threads.
    pub fn total_instrs(&self) -> u64 {
        self.threads.iter().map(|t| t.instrs()).sum()
    }

    /// Events summed across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// Completed work units summed across all threads.
    pub fn total_units(&self) -> u64 {
        self.threads.iter().map(|t| t.units()).sum()
    }

    /// Instructions charged to each code region across all threads,
    /// indexed by region id — one decode pass over every event stream.
    /// Per-operator attribution for reports (e.g. "how much of this
    /// capture is hash-join build/probe work?").
    pub fn region_instr_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.regions.len()];
        for t in &self.threads {
            for e in t.iter() {
                if let Event::Exec { region, instrs } = e {
                    if let Some(slot) = totals.get_mut(region as usize) {
                        *slot += instrs as u64;
                    }
                }
            }
        }
        totals
    }

    /// Instructions charged to the named code region across all threads
    /// (one decode pass per call — batch queries should use
    /// [`Self::region_instr_totals`]). Returns 0 for a name no region
    /// carries.
    pub fn region_instrs(&self, name: &str) -> u64 {
        let Some(id) = self.regions.iter().find(|r| r.name == name).map(|r| r.id) else {
            return 0;
        };
        self.region_instr_totals()[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_coalescing() {
        let mut t = Tracer::recording();
        t.exec(5, 10);
        t.exec(5, 20);
        t.exec(6, 1);
        t.exec(5, 2);
        let tr = t.finish();
        let evs: Vec<Event> = tr.iter().collect();
        assert_eq!(
            evs,
            vec![
                Event::Exec {
                    region: 5,
                    instrs: 30
                },
                Event::Exec {
                    region: 6,
                    instrs: 1
                },
                Event::Exec {
                    region: 5,
                    instrs: 2
                },
            ]
        );
        assert_eq!(tr.instrs(), 33);
    }

    #[test]
    fn coalescing_flushed_by_memory_ops() {
        let mut t = Tracer::recording();
        t.exec(1, 4);
        t.load(128, 8);
        t.exec(1, 4);
        let tr = t.finish();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.instrs(), 9);
    }

    #[test]
    fn large_access_split() {
        let mut t = Tracer::recording();
        t.store(0, 10_000);
        let tr = t.finish();
        assert_eq!(tr.len(), 3); // 4095 + 4095 + 1810
        let total: u64 = tr
            .iter()
            .map(|e| match e {
                Event::Store { size, .. } => size as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 10_000);
        assert_eq!(tr.stores(), 3);
    }

    #[test]
    fn null_mode_counts_but_records_nothing() {
        let mut t = Tracer::null();
        t.exec(1, 100);
        t.load(64, 8);
        t.store(128, 8);
        t.unit_end();
        let tr = t.finish();
        assert!(tr.is_empty());
        assert_eq!(tr.instrs(), 102);
        assert_eq!(tr.units(), 1);
    }

    #[test]
    fn zero_instr_exec_is_dropped() {
        let mut t = Tracer::recording();
        t.exec(1, 0);
        let tr = t.finish();
        assert!(tr.is_empty());
    }
}
