//! Property tests for the trace substrate: packing is lossless, the
//! tracer conserves instruction counts, and the address space never
//! produces overlapping allocations.

use dbcmp_trace::{AddressSpace, CodeRegions, Event, Segment, Tracer, SEGMENT_EVENTS};
use proptest::prelude::*;

/// Arbitrary decoded events within encodable ranges.
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u16..1024, any::<u32>()).prop_map(|(region, instrs)| Event::Exec { region, instrs }),
        (0u64..(1 << 48), 1u16..4096, any::<bool>()).prop_map(|(addr, size, dep)| Event::Load {
            addr,
            size,
            dep
        }),
        (0u64..(1 << 48), 1u16..4096).prop_map(|(addr, size)| Event::Store { addr, size }),
        Just(Event::Fence),
        Just(Event::UnitEnd),
        Just(Event::Block),
        Just(Event::Wake),
    ]
}

proptest! {
    // Deterministic in CI: the vendored proptest seeds each property's RNG
    // from the test's fully-qualified name; this bounds the case count.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack → decode is the identity for every representable event.
    #[test]
    fn event_roundtrip(e in arb_event()) {
        prop_assert_eq!(e.pack().decode(), e);
    }

    /// The tracer's aggregate instruction count equals the sum over its
    /// decoded events, regardless of coalescing and splitting.
    #[test]
    fn tracer_conserves_instructions(
        ops in prop::collection::vec((0u8..4, 0u16..8, 1u32..5000, 0u64..(1<<30)), 0..200)
    ) {
        let mut t = Tracer::recording();
        let mut expect_instrs: u64 = 0;
        let mut expect_units: u64 = 0;
        for (op, region, n, addr) in ops {
            match op {
                0 => {
                    t.exec(region, n);
                    expect_instrs += n as u64;
                }
                1 => {
                    t.load(addr, n);
                    expect_instrs += (n.max(1)).div_ceil(4095) as u64;
                }
                2 => {
                    t.store(addr, n);
                    expect_instrs += (n.max(1)).div_ceil(4095) as u64;
                }
                _ => {
                    t.unit_end();
                    expect_units += 1;
                }
            }
        }
        let tr = t.finish();
        prop_assert_eq!(tr.instrs(), expect_instrs);
        prop_assert_eq!(tr.units(), expect_units);
        let decoded: u64 = tr.iter().map(|e| e.instr_count()).sum();
        prop_assert_eq!(decoded, expect_instrs);
    }

    /// ISSUE 6: the columnar segment codec round-trips arbitrary event
    /// sequences losslessly — encode → decode is the identity on the
    /// decoded stream, and re-packing reproduces the flat wire words.
    #[test]
    fn segment_roundtrip(events in prop::collection::vec(arb_event(), 0..600)) {
        let packed: Vec<_> = events.iter().map(|e| e.pack()).collect();
        let seg = Segment::encode(&packed);
        prop_assert_eq!(seg.len(), events.len());
        let decoded = seg.decode();
        prop_assert_eq!(&decoded, &events);
        let repacked: Vec<_> = decoded.iter().map(|e| e.pack()).collect();
        prop_assert_eq!(repacked, packed, "re-packed words must be byte-identical");
    }

    /// A tracer-produced segmented stream decodes to the same event
    /// sequence as feeding the ops through the flat packing directly,
    /// for any op mix and any trace length relative to the block size.
    #[test]
    fn tracer_stream_matches_flat_packing(
        ops in prop::collection::vec((0u8..6, 0u16..8, 1u32..5000, 0u64..(1<<30)), 0..300),
        to_boundary in 0usize..3,
    ) {
        let mut t = Tracer::recording();
        for &(op, region, n, addr) in &ops {
            match op {
                0 => t.exec(region, n),
                1 => t.load(addr, n),
                2 => t.load_dep(addr, n),
                3 => t.store(addr, n),
                4 => t.fence(),
                _ => t.unit_end(),
            }
        }
        // Optionally pad across a segment boundary so some cases seal
        // multiple blocks.
        for i in 0..(to_boundary * SEGMENT_EVENTS) {
            t.load((i as u64) * 64, 8);
        }
        let tr = t.finish();
        let via_segments: Vec<Event> = tr.iter().collect();
        prop_assert_eq!(via_segments.len(), tr.len());
        let repacked: Vec<_> = via_segments.iter().map(|e| e.pack()).collect();
        prop_assert_eq!(repacked, tr.packed_events());
        let n_events: usize = tr.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(n_events, tr.len());
    }

    /// Bump allocations never overlap and respect line alignment.
    #[test]
    fn address_space_disjoint(sizes in prop::collection::vec(1u64..10_000, 1..100)) {
        let space = AddressSpace::new();
        let mut ranges: Vec<(u64, u64)> = sizes
            .iter()
            .map(|&s| (space.alloc_anon(s), s))
            .collect();
        ranges.sort_by_key(|&(base, _)| base);
        for w in ranges.windows(2) {
            let (a, alen) = w[0];
            let (b, _) = w[1];
            prop_assert!(a % 64 == 0);
            prop_assert!(a + alen <= b, "allocations must not overlap");
        }
    }

    /// Region registration keeps regions disjoint with guard gaps for any
    /// footprint mix.
    #[test]
    fn code_regions_disjoint(fps in prop::collection::vec(1u64..(1<<20), 1..50)) {
        let mut r = CodeRegions::new();
        for &fp in &fps {
            r.add("x", fp, 1.0);
        }
        let mut spans: Vec<(u64, u64)> = r.iter().map(|c| (c.base, c.footprint)).collect();
        spans.sort_by_key(|&(b, _)| b);
        for w in spans.windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0, "regions must have guard gaps");
        }
    }
}
